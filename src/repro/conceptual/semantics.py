"""Static semantic checks for coNCePTuaL programs.

Runs after parsing and before translation: verifies that every variable
reference resolves (parameters, loop/let bindings, task bindings,
``num_tasks``, ``elapsed_usecs``), that called functions exist with the
right arity, and that collective statements use supportable task
expressions (e.g. a multicast has a single root, a reduction involves
all tasks).
"""

from __future__ import annotations

from repro.conceptual import ast_nodes as A
from repro.conceptual.builtins import FUNCTIONS, RUNTIME_FUNCTIONS
from repro.conceptual.errors import SemanticError


class _Checker:
    def __init__(self, program: A.Program) -> None:
        self.program = program
        self.scope: set[str] = {p.name for p in program.params}

    def check(self) -> None:
        names = [p.name for p in self.program.params]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise SemanticError(f"duplicate parameter declarations: {sorted(dupes)}")
        for p in self.program.params:
            self._expr(p.default, set())
        for a in self.program.asserts:
            self._expr(a.cond, set())
        self._seq(self.program.body, set())

    # -- statements ------------------------------------------------------
    def _seq(self, seq: A.StmtSeq, bound: set[str]) -> None:
        for stmt in seq.stmts:
            self._stmt(stmt, bound)

    def _stmt(self, stmt: A.Stmt, bound: set[str]) -> None:
        if isinstance(stmt, A.StmtSeq):
            self._seq(stmt, bound)
        elif isinstance(stmt, A.ForReps):
            self._expr(stmt.count, bound)
            self._seq(stmt.body, bound)
        elif isinstance(stmt, A.ForEach):
            for spec in stmt.ranges:
                for e in spec.exprs:
                    self._expr(e, bound)
                if spec.ellipsis_to is not None:
                    self._expr(spec.ellipsis_to, bound)
            self._seq(stmt.body, bound | {stmt.var})
        elif isinstance(stmt, A.While):
            self._expr(stmt.cond, bound)
            self._seq(stmt.body, bound)
        elif isinstance(stmt, A.If):
            self._expr(stmt.cond, bound)
            self._seq(stmt.then, bound)
            if stmt.otherwise is not None:
                self._seq(stmt.otherwise, bound)
        elif isinstance(stmt, A.Let):
            inner = set(bound)
            for name, expr in stmt.bindings:
                self._expr(expr, inner)
                inner.add(name)
            self._seq(stmt.body, inner)
        elif isinstance(stmt, A.Send):
            var = self._task_expr(stmt.sender, bound, role="sender")
            inner = bound | ({var} if var else set())
            if stmt.count is not None:
                self._expr(stmt.count, inner)
            self._expr(stmt.size, inner)
            self._target_expr(stmt.target, inner, stmt.line)
        elif isinstance(stmt, A.Receive):
            var = self._task_expr(stmt.receiver, bound, role="receiver")
            inner = bound | ({var} if var else set())
            if stmt.count is not None:
                self._expr(stmt.count, inner)
            self._expr(stmt.size, inner)
            self._target_expr(stmt.source, inner, stmt.line)
        elif isinstance(stmt, A.Multicast):
            if not isinstance(stmt.sender, A.TaskN):
                raise SemanticError(
                    "multicast requires a single root ('task <expr> multicasts ...')",
                    stmt.line,
                    0,
                )
            self._expr(stmt.sender.expr, bound)
            self._expr(stmt.size, bound)
            if not isinstance(stmt.target, (A.AllTasks, A.AllOtherTasks)):
                raise SemanticError(
                    "multicast target must be 'all tasks' or 'all other tasks'", stmt.line, 0
                )
        elif isinstance(stmt, A.ReduceStmt):
            if not isinstance(stmt.senders, A.AllTasks):
                raise SemanticError("reduction must be performed by 'all tasks'", stmt.line, 0)
            self._expr(stmt.size, bound)
            if isinstance(stmt.target, A.TaskN):
                self._expr(stmt.target.expr, bound)
            elif not isinstance(stmt.target, A.AllTasks):
                raise SemanticError(
                    "reduction target must be 'task <expr>' or 'all tasks'", stmt.line, 0
                )
        elif isinstance(stmt, A.Synchronize):
            if not isinstance(stmt.tasks, A.AllTasks) or (
                isinstance(stmt.tasks, A.AllTasks) and stmt.tasks.var
            ):
                raise SemanticError("synchronization must involve 'all tasks'", stmt.line, 0)
        elif isinstance(stmt, (A.ResetCounters, A.AwaitCompletion, A.ComputeAggregates)):
            self._task_expr(stmt.tasks, bound, role="subject")
        elif isinstance(stmt, (A.ComputeStmt, A.SleepStmt)):
            var = self._task_expr(stmt.tasks, bound, role="subject")
            self._expr(stmt.amount, bound | ({var} if var else set()))
        elif isinstance(stmt, A.LogStmt):
            var = self._task_expr(stmt.tasks, bound, role="subject")
            inner = bound | ({var} if var else set())
            for item in stmt.items:
                self._expr(item.expr, inner)
        elif isinstance(stmt, A.OutputStmt):
            var = self._task_expr(stmt.tasks, bound, role="subject")
            if stmt.expr is not None:
                self._expr(stmt.expr, bound | ({var} if var else set()))
        elif isinstance(stmt, A.TouchStmt):
            var = self._task_expr(stmt.tasks, bound, role="subject")
            self._expr(stmt.size, bound | ({var} if var else set()))
        elif isinstance(stmt, A.IOStmt):
            var = self._task_expr(stmt.tasks, bound, role="subject")
            inner = bound | ({var} if var else set())
            self._expr(stmt.size, inner)
            if stmt.server is not None:
                self._expr(stmt.server, inner)
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unhandled statement {type(stmt).__name__}", stmt.line, 0)

    def _task_expr(self, texpr: A.TaskExpr, bound: set[str], role: str) -> str | None:
        """Check a subject task expression; returns the binding var if any."""
        if isinstance(texpr, A.AllTasks):
            return texpr.var
        if isinstance(texpr, A.TaskN):
            self._expr(texpr.expr, bound)
            return None
        if isinstance(texpr, A.SuchThat):
            self._expr(texpr.cond, bound | {texpr.var})
            return texpr.var
        if isinstance(texpr, A.AllOtherTasks):
            raise SemanticError(f"'all other tasks' cannot be a {role}", texpr.line, 0)
        raise SemanticError(f"unhandled task expression {type(texpr).__name__}", texpr.line, 0)

    def _target_expr(self, texpr: A.TaskExpr, bound: set[str], line: int) -> None:
        """Check a send-target / receive-source task expression."""
        if isinstance(texpr, A.TaskN):
            self._expr(texpr.expr, bound)
        elif isinstance(texpr, (A.AllTasks, A.AllOtherTasks)):
            if isinstance(texpr, A.AllTasks) and texpr.var:
                raise SemanticError("a send target cannot introduce a new binding", line, 0)
        elif isinstance(texpr, A.SuchThat):
            self._expr(texpr.cond, bound | {texpr.var})
        else:  # pragma: no cover - defensive
            raise SemanticError(f"unhandled target {type(texpr).__name__}", line, 0)

    # -- expressions ------------------------------------------------------
    def _expr(self, expr: A.Expr, bound: set[str]) -> None:
        if isinstance(expr, A.Num):
            return
        if isinstance(expr, A.Var):
            name = expr.name
            if name in ("num_tasks", "elapsed_usecs"):
                return
            if name not in self.scope and name not in bound:
                raise SemanticError(f"undefined variable {name!r}", expr.line, 0)
            return
        if isinstance(expr, A.UnOp):
            self._expr(expr.operand, bound)
            return
        if isinstance(expr, (A.BinOp, A.Compare, A.BoolOp)):
            self._expr(expr.left, bound)
            self._expr(expr.right, bound)
            return
        if isinstance(expr, (A.Not, A.Parity)):
            self._expr(expr.operand, bound)
            return
        if isinstance(expr, A.Call):
            name = expr.name.lower()
            if name in RUNTIME_FUNCTIONS:
                if len(expr.args) != 2:
                    raise SemanticError(f"{name} expects 2 arguments", expr.line, 0)
            else:
                spec = FUNCTIONS.get(name)
                if spec is None:
                    raise SemanticError(f"unknown function {expr.name!r}", expr.line, 0)
                _fn, lo, hi = spec
                if not lo <= len(expr.args) <= hi:
                    raise SemanticError(
                        f"{name} expects {lo}..{hi} arguments, got {len(expr.args)}",
                        expr.line,
                        0,
                    )
            for a in expr.args:
                self._expr(a, bound)
            return
        raise SemanticError(f"unhandled expression {type(expr).__name__}", getattr(expr, "line", -1), 0)


def check(program: A.Program) -> A.Program:
    """Validate ``program``; returns it unchanged on success."""
    _Checker(program).check()
    return program
