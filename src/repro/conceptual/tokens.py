"""Token definitions for the coNCePTuaL lexer."""

from __future__ import annotations

# Token types
NUMBER = "NUMBER"
STRING = "STRING"
IDENT = "IDENT"
KEYWORD = "KEYWORD"
OP = "OP"
LBRACE = "LBRACE"
RBRACE = "RBRACE"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COMMA = "COMMA"
PERIOD = "PERIOD"
ELLIPSIS = "ELLIPSIS"
EOF = "EOF"

#: Reserved words.  The language is keyword-heavy by design; words here
#: cannot be used as variable names.  Singular/plural verb forms are both
#: listed so "task 0 sends" and "all tasks send" parse alike.
KEYWORDS = frozenset(
    {
        # structure
        "require", "language", "version",
        "is", "and", "comes", "from", "with", "default",
        "assert", "that",
        "then", "otherwise", "if", "while", "for", "each", "in",
        "repetitions", "repetition", "times",
        "let", "be",
        # task expressions
        "task", "tasks", "all", "other", "such",
        # verbs
        "sends", "send", "receives", "receive",
        "multicasts", "multicast",
        "reduces", "reduce",
        "synchronizes", "synchronize",
        "computes", "compute", "sleeps", "sleep",
        "resets", "reset", "its", "their", "counters",
        "awaits", "await", "completion", "completions",
        "logs", "log", "as",
        "outputs", "output",
        "touches", "touch", "memory", "of",
        "writes", "write", "reads", "read", "file", "files", "server",
        "aggregates",
        # message attributes
        "a", "an", "message", "messages", "value", "values",
        "nonblocking", "asynchronously", "to",
        # units
        "bit", "bits", "byte", "bytes",
        "kilobyte", "kilobytes", "megabyte", "megabytes", "gigabyte", "gigabytes",
        "microsecond", "microseconds", "millisecond", "milliseconds",
        "second", "seconds", "minute", "minutes",
        # aggregate functions in logs
        "the", "mean", "median", "minimum", "maximum", "sum", "variance",
        # expression keywords
        "mod", "not", "or", "xor", "even", "odd", "divides",
    }
)

#: Size units in bytes (coNCePTuaL uses powers of two).
SIZE_UNITS = {
    "bit": 0.125, "bits": 0.125,
    "byte": 1, "bytes": 1,
    "kilobyte": 1 << 10, "kilobytes": 1 << 10,
    "megabyte": 1 << 20, "megabytes": 1 << 20,
    "gigabyte": 1 << 30, "gigabytes": 1 << 30,
}

#: Time units in seconds.
TIME_UNITS = {
    "microsecond": 1e-6, "microseconds": 1e-6,
    "millisecond": 1e-3, "milliseconds": 1e-3,
    "second": 1.0, "seconds": 1.0,
    "minute": 60.0, "minutes": 60.0,
}


class Token:
    """One lexical token with its source position."""

    __slots__ = ("type", "value", "line", "column")

    def __init__(self, type_: str, value, line: int, column: int) -> None:
        self.type = type_
        self.value = value
        self.line = line
        self.column = column

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"
