"""Error hierarchy for the coNCePTuaL front end."""

from __future__ import annotations


class ConceptualError(Exception):
    """Base class for all coNCePTuaL front-end errors."""

    def __init__(self, message: str, line: int = -1, column: int = -1) -> None:
        self.line = line
        self.column = column
        if line >= 0:
            message = f"line {line}, column {column}: {message}"
        super().__init__(message)


class LexError(ConceptualError):
    """Unrecognized character or malformed literal."""


class ParseError(ConceptualError):
    """Token stream does not match the grammar."""


class SemanticError(ConceptualError):
    """Program is grammatical but ill-formed (unknown variable, bad arity)."""


class EvalError(ConceptualError):
    """Runtime expression evaluation failed."""
