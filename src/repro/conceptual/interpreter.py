"""Application backend: run the *full* coNCePTuaL program.

This is the reproduction's stand-in for compiling the program to C+MPI
and executing it on a real machine -- the reference against which Union
skeletons are validated (Section V).  It

* allocates real communication buffers (growing a backing ``bytearray``
  exactly as the generated C would grow its message buffer), so the
  memory-footprint comparison in Table I is measured, not asserted;
* counts every MPI-level event per rank (Table IV) and the bytes each
  rank transmits (Table V);
* records the control-flow trace of MPI operations (Figure 6).

coNCePTuaL control flow cannot depend on received data, so all ranks
follow the same statement sequence; the interpreter exploits this by
walking the AST once and applying each statement's effects to all ranks
vectorially -- O(statements x ranks) instead of O(statements x ranks^2).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.conceptual import ast_nodes as A
from repro.conceptual.errors import EvalError, SemanticError
from repro.conceptual.evaluator import Env, evaluate, expand_range
from repro.conceptual.semantics import check
from repro.pdes.rng import SplitMix

#: Byte-accounting rules shared with the skeleton counting backend
#: (:mod:`repro.union.event_generator`): who "transmits" in a collective.
#: send: the sender; bcast: the root; reduce: every non-root rank;
#: allreduce: every rank.


class ApplicationRun:
    """Results of executing a coNCePTuaL program as a full application."""

    def __init__(self, n_tasks: int, record_trace: bool) -> None:
        self.n_tasks = n_tasks
        self.counters: dict[str, np.ndarray] = {}
        self.bytes_sent = np.zeros(n_tasks, dtype=np.int64)
        self.bytes_io = np.zeros(n_tasks, dtype=np.int64)  # read+written per rank
        self.clock = np.zeros(n_tasks, dtype=np.float64)
        self.epoch = np.zeros(n_tasks, dtype=np.float64)
        self.buffer_bytes = np.zeros(n_tasks, dtype=np.int64)  # per-rank buffer high-water
        self.traces: list[list[str]] | None = [[] for _ in range(n_tasks)] if record_trace else None
        self.logs: dict[tuple[int, str], list[float]] = {}
        self.outputs: list[tuple[int, str]] = []
        self._buffer = bytearray()  # the real allocation (grown to global max)

    # -- recording helpers ------------------------------------------------
    def count(self, fn: str, ranks) -> None:
        arr = self.counters.get(fn)
        if arr is None:
            arr = self.counters[fn] = np.zeros(self.n_tasks, dtype=np.int64)
        arr[ranks] += 1

    def count_rank(self, fn: str, rank: int, n: int = 1) -> None:
        arr = self.counters.get(fn)
        if arr is None:
            arr = self.counters[fn] = np.zeros(self.n_tasks, dtype=np.int64)
        arr[rank] += n

    def trace(self, fn: str, rank: int) -> None:
        if self.traces is not None:
            self.traces[rank].append(fn)

    def trace_all(self, fn: str, ranks) -> None:
        if self.traces is not None:
            for r in ranks:
                self.traces[r].append(fn)

    def grow_buffer(self, rank: int, nbytes: int) -> None:
        """Model the application's message buffer: grow-to-fit, touch last byte."""
        if nbytes > self.buffer_bytes[rank]:
            self.buffer_bytes[rank] = nbytes
        if nbytes > len(self._buffer):
            self._buffer.extend(b"\0" * (nbytes - len(self._buffer)))
            if nbytes:
                self._buffer[nbytes - 1] = 1

    # -- summaries ----------------------------------------------------------
    def event_counts(self) -> dict[str, int]:
        """Total MPI event count per function (Table IV rows)."""
        return {fn: int(arr.sum()) for fn, arr in sorted(self.counters.items())}

    def event_counts_per_rank(self, fn: str) -> np.ndarray:
        return self.counters.get(fn, np.zeros(self.n_tasks, dtype=np.int64))

    def bytes_by_rank(self) -> np.ndarray:
        """Bytes transmitted by each rank (Table V rows)."""
        return self.bytes_sent.copy()

    def peak_buffer_bytes(self) -> int:
        """Largest per-rank communication buffer the application allocated."""
        return int(self.buffer_bytes.max()) if self.n_tasks else 0

    def log_values(self, rank: int, label: str) -> list[float]:
        return self.logs.get((rank, label), [])

    def aggregate_log(self, rank: int, label: str, how: str) -> float:
        vals = self.log_values(rank, label)
        if not vals:
            raise KeyError(f"no logged values for rank {rank}, label {label!r}")
        arr = np.asarray(vals)
        return {
            "mean": float(arr.mean()),
            "median": float(np.median(arr)),
            "minimum": float(arr.min()),
            "maximum": float(arr.max()),
            "sum": float(arr.sum()),
            "variance": float(arr.var()),
        }[how]


class _Interp:
    def __init__(self, program: A.Program, n_tasks: int, params: dict[str, Any], seed: int, record_trace: bool) -> None:
        self.program = program
        self.n = n_tasks
        self.run = ApplicationRun(n_tasks, record_trace)
        # Stream layout mirrors union.event_generator.SkeletonShared so
        # random_task draws agree between application and skeleton runs:
        # streams 1..n are per-rank 'own' streams (sizes, compute times),
        # streams n+1..2n are pattern streams (send targets, sender sets).
        self.own_rngs = [SplitMix(seed, r + 1) for r in range(n_tasks)]
        self.pattern_rngs = [SplitMix(seed, n_tasks + 1 + r) for r in range(n_tasks)]
        variables: dict[str, Any] = {}
        base_env = Env({}, num_tasks=n_tasks)
        for p in program.params:
            if p.name in params:
                variables[p.name] = params[p.name]
            else:
                variables[p.name] = evaluate(p.default, base_env)
        unknown = set(params) - set(variables)
        if unknown:
            raise SemanticError(f"unknown parameters for {program.source_name}: {sorted(unknown)}")
        self.env = Env(variables, num_tasks=n_tasks)
        self.all_ranks = np.arange(n_tasks)

    # -- entry ------------------------------------------------------------
    def execute(self) -> ApplicationRun:
        for a in self.program.asserts:
            if not evaluate(a.cond, self.env):
                raise AssertionError(a.text)
        self.run.count("MPI_Init", self.all_ranks)
        self.run.trace_all("MPI_Init", range(self.n))
        self._seq(self.program.body, self.env)
        self.run.count("MPI_Finalize", self.all_ranks)
        self.run.trace_all("MPI_Finalize", range(self.n))
        return self.run

    # -- per-rank evaluation helpers ---------------------------------------
    def _env_for(self, env: Env, var: str | None, rank: int, pattern: bool = False) -> Env:
        e = env.child(**({var: rank} if var else {}))
        e.rng = (self.pattern_rngs if pattern else self.own_rngs)[rank]
        e.elapsed_usecs = lambda r=rank: (self.run.clock[r] - self.run.epoch[r]) * 1e6
        return e

    def _members(self, texpr: A.TaskExpr, env: Env, pattern: bool = False) -> tuple[list[int], str | None]:
        """Concrete member ranks of a subject task expression + binding var.

        ``pattern`` selects the pattern RNG family for the membership
        condition (used when the members form the sender set of a
        communication statement, matching the skeleton backend).
        """
        if isinstance(texpr, A.AllTasks):
            return list(range(self.n)), texpr.var
        if isinstance(texpr, A.TaskN):
            t = int(evaluate(texpr.expr, env))
            if not 0 <= t < self.n:
                raise EvalError(f"task {t} outside 0..{self.n - 1}", texpr.line, 0)
            return [t], None
        if isinstance(texpr, A.SuchThat):
            out = [
                s
                for s in range(self.n)
                if evaluate(texpr.cond, self._env_for(env, texpr.var, s, pattern))
            ]
            return out, texpr.var
        raise EvalError(f"unsupported subject {type(texpr).__name__}", texpr.line, 0)

    def _targets_of(self, texpr: A.TaskExpr, env: Env, var: str | None, sender: int) -> list[int]:
        """Targets one sender addresses (``-1`` entries are dropped)."""
        if isinstance(texpr, A.TaskN):
            t = int(evaluate(texpr.expr, self._env_for(env, var, sender, pattern=True)))
            return [t] if t >= 0 else []
        if isinstance(texpr, A.AllOtherTasks):
            return [t for t in range(self.n) if t != sender]
        if isinstance(texpr, A.AllTasks):
            return list(range(self.n))
        if isinstance(texpr, A.SuchThat):
            return [
                t
                for t in range(self.n)
                if evaluate(texpr.cond, self._env_for(env, texpr.var, t, pattern=True))
            ]
        raise EvalError(f"unsupported target {type(texpr).__name__}", texpr.line, 0)

    # -- statement execution ----------------------------------------------------
    def _seq(self, seq: A.StmtSeq, env: Env) -> None:
        for stmt in seq.stmts:
            self._stmt(stmt, env)

    def _stmt(self, stmt: A.Stmt, env: Env) -> None:
        run = self.run
        if isinstance(stmt, A.StmtSeq):
            self._seq(stmt, env)
        elif isinstance(stmt, A.ForReps):
            reps = int(evaluate(stmt.count, env))
            for _ in range(reps):
                self._seq(stmt.body, env)
        elif isinstance(stmt, A.ForEach):
            for spec in stmt.ranges:
                for v in expand_range(spec, env, stmt.line):
                    self._seq(stmt.body, env.child(**{stmt.var: v}))
        elif isinstance(stmt, A.While):
            guard = 0
            while evaluate(stmt.cond, env):
                self._seq(stmt.body, env)
                guard += 1
                if guard > 10_000_000:  # pragma: no cover - runaway guard
                    raise EvalError("while loop exceeded 1e7 iterations", stmt.line, 0)
        elif isinstance(stmt, A.If):
            if evaluate(stmt.cond, env):
                self._seq(stmt.then, env)
            elif stmt.otherwise is not None:
                self._seq(stmt.otherwise, env)
        elif isinstance(stmt, A.Let):
            child = env
            for name, expr in stmt.bindings:
                child = child.child(**{name: evaluate(expr, child)})
            self._seq(stmt.body, child)
        elif isinstance(stmt, A.Send):
            self._send(stmt, env)
        elif isinstance(stmt, A.Receive):
            self._receive(stmt, env)
        elif isinstance(stmt, A.Multicast):
            root = int(evaluate(stmt.sender.expr, env))
            size = int(evaluate(stmt.size, env) * stmt.unit)
            run.count("MPI_Bcast", self.all_ranks)
            run.trace_all("MPI_Bcast", range(self.n))
            run.bytes_sent[root] += size
            for r in range(self.n):
                run.grow_buffer(r, size)
        elif isinstance(stmt, A.ReduceStmt):
            size = int(evaluate(stmt.size, env) * stmt.unit)
            if isinstance(stmt.target, A.AllTasks):
                run.count("MPI_Allreduce", self.all_ranks)
                run.trace_all("MPI_Allreduce", range(self.n))
                run.bytes_sent += size
            else:
                root = int(evaluate(stmt.target.expr, env))
                run.count("MPI_Reduce", self.all_ranks)
                run.trace_all("MPI_Reduce", range(self.n))
                run.bytes_sent += size
                run.bytes_sent[root] -= size
            for r in range(self.n):
                run.grow_buffer(r, size)
        elif isinstance(stmt, A.Synchronize):
            run.count("MPI_Barrier", self.all_ranks)
            run.trace_all("MPI_Barrier", range(self.n))
        elif isinstance(stmt, A.ResetCounters):
            members, _ = self._members(stmt.tasks, env)
            run.epoch[members] = run.clock[members]
        elif isinstance(stmt, A.ComputeStmt):
            members, var = self._members(stmt.tasks, env)
            for r in members:
                dt = float(evaluate(stmt.amount, self._env_for(env, var, r))) * stmt.unit
                run.clock[r] += dt
        elif isinstance(stmt, A.SleepStmt):
            members, var = self._members(stmt.tasks, env)
            for r in members:
                dt = float(evaluate(stmt.amount, self._env_for(env, var, r))) * stmt.unit
                run.clock[r] += dt
        elif isinstance(stmt, A.AwaitCompletion):
            members, _ = self._members(stmt.tasks, env)
            run.count("MPI_Waitall", members)
            run.trace_all("MPI_Waitall", members)
        elif isinstance(stmt, A.LogStmt):
            members, var = self._members(stmt.tasks, env)
            for r in members:
                e = self._env_for(env, var, r)
                for item in stmt.items:
                    val = float(evaluate(item.expr, e))
                    run.logs.setdefault((r, item.label), []).append(val)
        elif isinstance(stmt, A.ComputeAggregates):
            pass  # aggregation happens lazily in ApplicationRun.aggregate_log
        elif isinstance(stmt, A.OutputStmt):
            members, var = self._members(stmt.tasks, env)
            for r in members:
                if stmt.text is not None:
                    run.outputs.append((r, stmt.text))
                else:
                    val = evaluate(stmt.expr, self._env_for(env, var, r))
                    run.outputs.append((r, str(val)))
        elif isinstance(stmt, A.TouchStmt):
            members, var = self._members(stmt.tasks, env)
            for r in members:
                size = int(evaluate(stmt.size, self._env_for(env, var, r)) * stmt.unit)
                run.grow_buffer(r, size)
        elif isinstance(stmt, A.IOStmt):
            fn = "IO_Write" if stmt.write else "IO_Read"
            members, var = self._members(stmt.tasks, env)
            for r in members:
                size = int(evaluate(stmt.size, self._env_for(env, var, r)) * stmt.unit)
                run.count_rank(fn, r)
                run.trace(fn, r)
                run.bytes_io[r] += size
                # The full application stages I/O through a real buffer;
                # the skeleton nulls it (same rule as message buffers).
                run.grow_buffer(r, size)
        else:  # pragma: no cover - defensive
            raise EvalError(f"unhandled statement {type(stmt).__name__}", stmt.line, 0)

    def _send(self, stmt: A.Send, env: Env) -> None:
        run = self.run
        senders, var = self._members(stmt.sender, env, pattern=True)
        send_fn = "MPI_Send" if stmt.blocking else "MPI_Isend"
        recv_fn = "MPI_Recv" if stmt.blocking else "MPI_Irecv"
        # Two passes so each rank's trace shows all of its sends before
        # its receives -- the canonical order the generated skeleton uses.
        pairs: list[tuple[int, int, int]] = []  # (sender, target, count)
        for s in senders:
            # Counts resolve inside the pattern (as in the skeleton
            # backend); sizes are evaluated by the sender itself.
            count = (
                int(evaluate(stmt.count, self._env_for(env, var, s, pattern=True)))
                if stmt.count is not None
                else 1
            )
            size = int(evaluate(stmt.size, self._env_for(env, var, s)) * stmt.unit)
            targets = self._targets_of(stmt.target, env, var, s)
            for t in targets:
                if not 0 <= t < self.n:
                    raise EvalError(f"send target {t} outside 0..{self.n - 1}", stmt.line, 0)
                pairs.append((s, t, count))
                run.count_rank(send_fn, s, count)
                run.bytes_sent[s] += size * count
                run.grow_buffer(s, size)
                run.grow_buffer(t, size)
                if run.traces is not None:
                    for _ in range(count):
                        run.traces[s].append(send_fn)
        for s, t, count in pairs:
            run.count_rank(recv_fn, t, count)
            if run.traces is not None:
                for _ in range(count):
                    run.traces[t].append(recv_fn)

    def _receive(self, stmt: A.Receive, env: Env) -> None:
        run = self.run
        receivers, var = self._members(stmt.receiver, env, pattern=True)
        recv_fn = "MPI_Recv" if stmt.blocking else "MPI_Irecv"
        for r in receivers:
            count = (
                int(evaluate(stmt.count, self._env_for(env, var, r, pattern=True)))
                if stmt.count is not None
                else 1
            )
            size = int(evaluate(stmt.size, self._env_for(env, var, r)) * stmt.unit)
            sources = self._targets_of(stmt.source, env, var, r)
            for _src in sources:
                run.count_rank(recv_fn, r, count)
                run.grow_buffer(r, size)
                if run.traces is not None:
                    for _ in range(count):
                        run.traces[r].append(recv_fn)


def run_application(
    program: A.Program,
    n_tasks: int,
    params: dict[str, Any] | None = None,
    seed: int = 0,
    record_trace: bool = False,
) -> ApplicationRun:
    """Execute ``program`` as a full application on ``n_tasks`` ranks.

    ``params`` overrides command-line parameter defaults by name.
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    check(program)
    return _Interp(program, n_tasks, params or {}, seed, record_trace).execute()
