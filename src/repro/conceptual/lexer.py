"""Lexer: coNCePTuaL source text to a token list.

Hand-rolled scanner (the original uses lex).  Handles ``#`` comments,
integer/real literals (with ``e`` exponents), double-quoted strings with
escapes, identifiers/keywords, multi-character operators and the ``...``
ellipsis used in range lists.
"""

from __future__ import annotations

from repro.conceptual.errors import LexError
from repro.conceptual.tokens import (
    COMMA,
    ELLIPSIS,
    EOF,
    IDENT,
    KEYWORD,
    KEYWORDS,
    LBRACE,
    LPAREN,
    NUMBER,
    OP,
    PERIOD,
    RBRACE,
    RPAREN,
    STRING,
    Token,
)

_TWO_CHAR_OPS = ("**", "<=", ">=", "<>", ">>", "<<")
_ONE_CHAR_OPS = "+-*/%<>=&|^"
_PUNCT = {"{": LBRACE, "}": RBRACE, "(": LPAREN, ")": RPAREN, ",": COMMA}


def tokenize(source: str) -> list[Token]:
    """Scan ``source`` into tokens (ending with an EOF token)."""
    tokens: list[Token] = []
    line = 1
    col = 1
    i = 0
    n = len(source)

    def error(msg: str) -> LexError:
        return LexError(msg, line, col)

    while i < n:
        c = source[i]
        # -- whitespace / comments ----------------------------------------
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if c in " \t\r":
            i += 1
            col += 1
            continue
        if c == "#":
            while i < n and source[i] != "\n":
                i += 1
            continue
        start_col = col
        # -- ellipsis / period ------------------------------------------------
        if source.startswith("...", i):
            tokens.append(Token(ELLIPSIS, "...", line, start_col))
            i += 3
            col += 3
            continue
        if c == "." and not (i + 1 < n and source[i + 1].isdigit()):
            tokens.append(Token(PERIOD, ".", line, start_col))
            i += 1
            col += 1
            continue
        # -- numbers -----------------------------------------------------------
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            seen_dot = False
            seen_exp = False
            while j < n:
                ch = source[j]
                if ch.isdigit():
                    j += 1
                elif ch == "." and not seen_dot and not seen_exp:
                    # A lone trailing dot is a sentence period ("...1024.")
                    if j + 1 < n and source[j + 1].isdigit():
                        seen_dot = True
                        j += 1
                    else:
                        break
                elif ch in "eE" and not seen_exp and j + 1 < n and (
                    source[j + 1].isdigit() or source[j + 1] in "+-"
                ):
                    seen_exp = True
                    j += 1
                    if source[j] in "+-":
                        j += 1
                else:
                    break
            text = source[i:j]
            try:
                value = float(text) if (seen_dot or seen_exp) else int(text)
            except ValueError:  # pragma: no cover - unreachable by construction
                raise error(f"malformed number {text!r}") from None
            tokens.append(Token(NUMBER, value, line, start_col))
            col += j - i
            i = j
            continue
        # -- strings -----------------------------------------------------------
        if c == '"':
            j = i + 1
            buf: list[str] = []
            while j < n and source[j] != '"':
                if source[j] == "\\" and j + 1 < n:
                    esc = source[j + 1]
                    buf.append({"n": "\n", "t": "\t", '"': '"', "\\": "\\"}.get(esc, esc))
                    j += 2
                elif source[j] == "\n":
                    raise error("unterminated string literal")
                else:
                    buf.append(source[j])
                    j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(Token(STRING, "".join(buf), line, start_col))
            col += j + 1 - i
            i = j + 1
            continue
        # -- identifiers / keywords ------------------------------------------------
        if c.isalpha() or c == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, line, start_col))
            else:
                tokens.append(Token(IDENT, word, line, start_col))
            col += j - i
            i = j
            continue
        # -- punctuation / operators ----------------------------------------------------
        if c in _PUNCT:
            tokens.append(Token(_PUNCT[c], c, line, start_col))
            i += 1
            col += 1
            continue
        matched = False
        for op in _TWO_CHAR_OPS:
            if source.startswith(op, i):
                tokens.append(Token(OP, op, line, start_col))
                i += 2
                col += 2
                matched = True
                break
        if matched:
            continue
        if c in _ONE_CHAR_OPS:
            tokens.append(Token(OP, c, line, start_col))
            i += 1
            col += 1
            continue
        raise error(f"unexpected character {c!r}")

    tokens.append(Token(EOF, None, line, col))
    return tokens
