/* _union_accel: compiled event-loop kernel for the repro PDES engines.
 *
 * One C type, Kernel, owns the (time, priority, seq) binary heap and
 * runs the commit loop of the sequential and conservative (YAWNS)
 * schedulers, calling back into Python only for non-hot LP kinds.  The
 * hot Router/Terminal "pkt" events are handled natively: arrival
 * scheduling, busy_until bookkeeping and link-load/queue telemetry are
 * performed against the LPs' own Python containers, in the exact
 * statement order of RouterLP._on_arrival, so the committed event
 * sequence -- and every float -- is bit-identical to the pure-Python
 * engines.
 *
 * Contracts this file must keep in lockstep with the Python side:
 *
 *   - entry layout + compare order: repro/pdes/eventheap.py
 *     (ENTRY_FIELDS == ("time", "priority", "seq"); min-heap, seq is
 *     unique so the compare never needs the payload);
 *   - seq packing: Engine.schedule_fast -- slot = origin + 1,
 *     seq = (slot << 40) | counter, counter bumped per slot;
 *   - loop semantics: SequentialEngine.run and ConservativeEngine.run/
 *     commit_window, including budget (-1 unlimited, 0 commits
 *     nothing, stop when committed == budget), the horizon advance,
 *     and the finally-clause bookkeeping on handler exceptions;
 *   - router fast path: RouterLP._on_arrival / _select_port /
 *     queue_depth, including the deque pruning a multi-candidate
 *     adaptive probe performs on every candidate port.
 *
 * All floats are IEEE doubles computed in the same operation order as
 * CPython would; build without -ffast-math (see accel/build.py).
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>

/* ---------------------------------------------------------------- */
/* interned attribute / method names                                 */

static PyObject *str_time, *str_priority, *str_seq, *str_dst, *str_src,
    *str_send_time, *str_kind, *str_data, *str_path, *str_hop,
    *str_dst_node, *str_size, *str_app_id, *str_popleft, *str_append,
    *str_packets_forwarded;

/* ---------------------------------------------------------------- */
/* heap entries                                                      */

typedef struct {
    double time;
    double send_time;
    int64_t seq;
    long prio;
    long dst;
    long src;
    int native;        /* 1: payload is the Packet of a "pkt" event   */
    PyObject *payload; /* owned: Event (native=0) or Packet (native=1) */
} entry_t;

static inline int
entry_lt(const entry_t *a, const entry_t *b)
{
    if (a->time != b->time)
        return a->time < b->time;
    if (a->prio != b->prio)
        return a->prio < b->prio;
    return a->seq < b->seq;
}

/* ---------------------------------------------------------------- */
/* per-LP dispatch table                                             */

enum { DISP_PYTHON = 0, DISP_ROUTER = 1, DISP_TERMINAL = 2 };

typedef struct {
    int kind;
    long lp_id;
    PyObject *lp;         /* the LP object (owned)                    */
    PyObject *handle;     /* bound lp.handle (owned; all kinds)       */
    /* router fast path (owned or NULL) */
    PyObject *on_arrival;     /* bound _on_arrival (held for the row) */
    PyObject *ports;          /* list[(peer, bw, extra, link, hop+)]  */
    PyObject *busy_until;     /* list[float], shared with the LP      */
    PyObject *pending_starts; /* list[deque]                          */
    PyObject *port_to_node;   /* dict: dst node -> port               */
    PyObject *ports_to_router;/* dict: next router lp -> [ports]      */
    PyObject *app_record;     /* telemetry hooks; NULL when disabled  */
    PyObject *load_record;
    PyObject *queue_record;
    PyObject *rid;            /* router id (int)                      */
    /* terminal fast path */
    PyObject *on_pkt;         /* bound _on_pkt                        */
} disp_t;

/* ---------------------------------------------------------------- */
/* the Kernel object                                                 */

typedef struct {
    PyObject_HEAD
    entry_t *heap;
    Py_ssize_t len, cap;
    int64_t *counters;      /* slot 0 = environment, then one per LP  */
    Py_ssize_t n_counters, counters_cap;
    long *parts;            /* partition per LP (conservative mode)   */
    Py_ssize_t parts_cap;
    double now;
    long origin;            /* seq slot owner; -1 outside handlers    */
    int conservative;
    double lookahead;
    long n_partitions;
    long current_partition; /* gates the push-side lookahead check    */
    int64_t *per_part;      /* committed per partition                */
    long long windows_executed;
    long long max_window_events;
    long long events_processed;
    disp_t *disp;
    Py_ssize_t n_disp;
    PyObject *event_cls;    /* repro.pdes.event.Event                 */
} KernelObject;

#define SEQ_ORIGIN_SHIFT 40

/* ---------------------------------------------------------------- */
/* heap primitives (mirror heapq's sift algorithms)                  */

static int
heap_reserve(KernelObject *k, Py_ssize_t need)
{
    if (need <= k->cap)
        return 0;
    Py_ssize_t cap = k->cap ? k->cap : 256;
    while (cap < need)
        cap *= 2;
    entry_t *h = PyMem_Realloc(k->heap, (size_t)cap * sizeof(entry_t));
    if (!h) {
        PyErr_NoMemory();
        return -1;
    }
    k->heap = h;
    k->cap = cap;
    return 0;
}

static void
heap_siftdown(entry_t *h, Py_ssize_t start, Py_ssize_t pos)
{
    entry_t item = h[pos];
    while (pos > start) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(&item, &h[parent]))
            break;
        h[pos] = h[parent];
        pos = parent;
    }
    h[pos] = item;
}

static void
heap_siftup(entry_t *h, Py_ssize_t len, Py_ssize_t pos)
{
    Py_ssize_t start = pos;
    entry_t item = h[pos];
    Py_ssize_t child = 2 * pos + 1;
    while (child < len) {
        Py_ssize_t right = child + 1;
        if (right < len && !entry_lt(&h[child], &h[right]))
            child = right;
        h[pos] = h[child];
        pos = child;
        child = 2 * pos + 1;
    }
    h[pos] = item;
    heap_siftdown(h, start, pos);
}

/* push steals the payload reference on success */
static int
heap_push(KernelObject *k, entry_t *e)
{
    if (heap_reserve(k, k->len + 1) < 0)
        return -1;
    k->heap[k->len] = *e;
    heap_siftdown(k->heap, 0, k->len);
    k->len++;
    return 0;
}

static void
heap_pop(KernelObject *k, entry_t *out)
{
    *out = k->heap[0];
    k->len--;
    if (k->len) {
        k->heap[0] = k->heap[k->len];
        heap_siftup(k->heap, k->len, 0);
    }
}

/* ---------------------------------------------------------------- */
/* small attribute helpers                                           */

static int
get_double_attr(PyObject *o, PyObject *name, double *out)
{
    PyObject *v = PyObject_GetAttr(o, name);
    if (!v)
        return -1;
    *out = PyFloat_AsDouble(v);
    Py_DECREF(v);
    if (*out == -1.0 && PyErr_Occurred())
        return -1;
    return 0;
}

static int
get_long_attr(PyObject *o, PyObject *name, long *out)
{
    PyObject *v = PyObject_GetAttr(o, name);
    if (!v)
        return -1;
    *out = PyLong_AsLong(v);
    Py_DECREF(v);
    if (*out == -1 && PyErr_Occurred())
        return -1;
    return 0;
}

/* Event for a natively-scheduled entry (handed to a Python LP or an
 * error message); seq is the one assigned at scheduling time. */
static PyObject *
materialize_event(KernelObject *k, const entry_t *e)
{
    PyObject *ev = PyObject_CallFunction(
        k->event_cls, "dlsOlld", e->time, e->dst, "pkt", e->payload,
        e->prio, e->src, e->send_time);
    if (!ev)
        return NULL;
    PyObject *seq = PyLong_FromLongLong((long long)e->seq);
    if (!seq || PyObject_SetAttr(ev, str_seq, seq) < 0) {
        Py_XDECREF(seq);
        Py_DECREF(ev);
        return NULL;
    }
    Py_DECREF(seq);
    return ev;
}

/* Matches ConservativeEngine._push's message byte for byte. */
static void
raise_lookahead(KernelObject *k, PyObject *ev, double time, double send_time)
{
    char delay[32], la[32];
    PyOS_snprintf(delay, sizeof(delay), "%.3e", time - send_time);
    PyOS_snprintf(la, sizeof(la), "%.3e", k->lookahead);
    PyErr_Format(PyExc_RuntimeError,
                 "lookahead violation: cross-partition event %R scheduled "
                 "with delay %s < lookahead %s", ev, delay, la);
}

/* ---------------------------------------------------------------- */
/* native scheduling (router downstream sends)                       */

static int
sched_native(KernelObject *k, double time, long dst, PyObject *pkt, long src)
{
    long slot = k->origin + 1;
    int64_t c = k->counters[slot];
    k->counters[slot] = c + 1;
    entry_t e;
    e.time = time;
    e.send_time = k->now;
    e.seq = ((int64_t)slot << SEQ_ORIGIN_SHIFT) | c;
    e.prio = 1; /* Priority.NETWORK */
    e.dst = dst;
    e.src = src;
    e.native = 1;
    e.payload = pkt;
    if (k->conservative && k->current_partition >= 0
        && dst >= 0 && dst < k->n_counters - 1
        && k->parts[dst] != k->current_partition
        && time < e.send_time + k->lookahead) {
        PyObject *ev = materialize_event(k, &e);
        if (ev) {
            raise_lookahead(k, ev, time, e.send_time);
            Py_DECREF(ev);
        }
        return -1;
    }
    Py_INCREF(pkt);
    if (heap_push(k, &e) < 0) {
        Py_DECREF(pkt);
        return -1;
    }
    return 0;
}

/* ---------------------------------------------------------------- */
/* router arrival fast path (RouterLP._on_arrival, natively)         */

static int
prune_deque(PyObject *dq, double now)
{
    for (;;) {
        Py_ssize_t n = PySequence_Size(dq);
        if (n < 0)
            return -1;
        if (n == 0)
            return 0;
        PyObject *head = PySequence_GetItem(dq, 0);
        if (!head)
            return -1;
        double v = PyFloat_AsDouble(head);
        Py_DECREF(head);
        if (v == -1.0 && PyErr_Occurred())
            return -1;
        if (!(v <= now))
            return 0;
        PyObject *r = PyObject_CallMethodNoArgs(dq, str_popleft);
        if (!r)
            return -1;
        Py_DECREF(r);
    }
}

static int
router_arrival(KernelObject *k, disp_t *d, PyObject *pkt)
{
    double now = k->now;

    /* Resolve the output port first: last hop is a dict lookup, a
     * single forward candidate needs no probing, and a multi-candidate
     * adaptive choice takes the shallowest queue (pruning each port's
     * pending-starts deque exactly as queue_depth does). */
    long hop;
    if (get_long_attr(pkt, str_hop, &hop) < 0)
        return -1;
    PyObject *path = PyObject_GetAttr(pkt, str_path);
    if (!path)
        return -1;
    Py_ssize_t plen = PySequence_Size(path);
    if (plen < 0) {
        Py_DECREF(path);
        return -1;
    }
    long port;
    if (hop == plen - 1) {
        Py_DECREF(path);
        PyObject *dn = PyObject_GetAttr(pkt, str_dst_node);
        if (!dn)
            return -1;
        PyObject *po = PyObject_GetItem(d->port_to_node, dn);
        Py_DECREF(dn);
        if (!po)
            return -1; /* KeyError, as in Python */
        port = PyLong_AsLong(po);
        Py_DECREF(po);
        if (port == -1 && PyErr_Occurred())
            return -1;
    }
    else {
        PyObject *nxt = PySequence_GetItem(path, hop + 1);
        Py_DECREF(path);
        if (!nxt)
            return -1;
        PyObject *cands = PyObject_GetItem(d->ports_to_router, nxt);
        Py_DECREF(nxt);
        if (!cands)
            return -1; /* KeyError, as in Python */
        Py_ssize_t ncand = PySequence_Size(cands);
        if (ncand < 0) {
            Py_DECREF(cands);
            return -1;
        }
        if (ncand == 1) {
            PyObject *po = PySequence_GetItem(cands, 0);
            Py_DECREF(cands);
            if (!po)
                return -1;
            port = PyLong_AsLong(po);
            Py_DECREF(po);
            if (port == -1 && PyErr_Occurred())
                return -1;
        }
        else {
            /* Parallel links to the same neighbour:
             * min(candidates, key=queue_depth).  First minimum wins,
             * candidates probed in order, and each probe prunes that
             * port's pending-starts deque -- all exactly as the
             * Python min()/queue_depth pair behaves. */
            long best = -1;
            Py_ssize_t best_depth = 0;
            for (Py_ssize_t i = 0; i < ncand; i++) {
                PyObject *po = PySequence_GetItem(cands, i);
                if (!po)
                    goto cand_fail;
                long p = PyLong_AsLong(po);
                Py_DECREF(po);
                if (p == -1 && PyErr_Occurred())
                    goto cand_fail;
                PyObject *cdq = PyList_GetItem(d->pending_starts, p);
                if (!cdq)
                    goto cand_fail;
                Py_INCREF(cdq);
                int pr = prune_deque(cdq, now);
                Py_ssize_t dlen = (pr < 0) ? -1 : PySequence_Size(cdq);
                Py_DECREF(cdq);
                if (pr < 0 || dlen < 0)
                    goto cand_fail;
                PyObject *cbu = PyList_GetItem(d->busy_until, p);
                if (!cbu)
                    goto cand_fail;
                double b = PyFloat_AsDouble(cbu);
                if (b == -1.0 && PyErr_Occurred())
                    goto cand_fail;
                Py_ssize_t depth = dlen + (now < b ? 1 : 0);
                if (best < 0 || depth < best_depth) {
                    best = p;
                    best_depth = depth;
                }
            }
            Py_DECREF(cands);
            if (best < 0) {
                PyErr_SetString(PyExc_ValueError,
                                "min() iterable argument is empty");
                return -1;
            }
            port = best;
            goto cand_done;
        cand_fail:
            Py_DECREF(cands);
            return -1;
        cand_done:;
        }
    }

    /* From here on, the statement order of _on_arrival exactly. */
    int rc = -1;
    PyObject *sizeobj = NULL, *nowobj = NULL, *dq = NULL, *pt = NULL;

    sizeobj = PyObject_GetAttr(pkt, str_size);
    if (!sizeobj)
        goto done;
    double size = PyFloat_AsDouble(sizeobj);
    if (size == -1.0 && PyErr_Occurred())
        goto done;

    if (d->app_record) {
        PyObject *app = PyObject_GetAttr(pkt, str_app_id);
        if (!app)
            goto done;
        nowobj = PyFloat_FromDouble(now);
        if (!nowobj) {
            Py_DECREF(app);
            goto done;
        }
        PyObject *r = PyObject_CallFunctionObjArgs(
            d->app_record, d->rid, app, nowobj, sizeobj, NULL);
        Py_DECREF(app);
        if (!r)
            goto done;
        Py_DECREF(r);
    }

    /* Port constants are read live per event: fault planes rescale
     * _ports[port] in place mid-run. */
    pt = PyList_GetItem(d->ports, port); /* borrowed */
    if (!pt)
        goto done;
    Py_INCREF(pt);
    if (!PyTuple_Check(pt) || PyTuple_GET_SIZE(pt) != 5) {
        PyErr_SetString(PyExc_TypeError, "router port entry is not a 5-tuple");
        goto done;
    }
    long peer = PyLong_AsLong(PyTuple_GET_ITEM(pt, 0));
    if (peer == -1 && PyErr_Occurred())
        goto done;
    double bw = PyFloat_AsDouble(PyTuple_GET_ITEM(pt, 1));
    if (bw == -1.0 && PyErr_Occurred())
        goto done;
    double extra = PyFloat_AsDouble(PyTuple_GET_ITEM(pt, 2));
    if (extra == -1.0 && PyErr_Occurred())
        goto done;
    long hop_inc = PyLong_AsLong(PyTuple_GET_ITEM(pt, 4));
    if (hop_inc == -1 && PyErr_Occurred())
        goto done;

    PyObject *bu = PyList_GetItem(d->busy_until, port); /* borrowed */
    if (!bu)
        goto done;
    double start = PyFloat_AsDouble(bu);
    if (start == -1.0 && PyErr_Occurred())
        goto done;

    if (start > now) {
        dq = PyList_GetItem(d->pending_starts, port); /* borrowed */
        if (!dq)
            goto done;
        Py_INCREF(dq);
        if (prune_deque(dq, now) < 0)
            goto done;
        PyObject *so = PyFloat_FromDouble(start);
        if (!so)
            goto done;
        PyObject *r = PyObject_CallMethodOneArg(dq, str_append, so);
        Py_DECREF(so);
        if (!r)
            goto done;
        Py_DECREF(r);
    }
    else {
        start = now;
    }

    double fin = start + size / bw;
    {
        PyObject *fo = PyFloat_FromDouble(fin);
        if (!fo)
            goto done;
        if (PyList_SetItem(d->busy_until, port, fo) < 0) /* steals fo */
            goto done;
    }

    if (d->load_record) {
        PyObject *r = PyObject_CallFunctionObjArgs(
            d->load_record, PyTuple_GET_ITEM(pt, 3), sizeobj, NULL);
        if (!r)
            goto done;
        Py_DECREF(r);
    }

    if (d->queue_record) {
        if (!dq) {
            dq = PyList_GetItem(d->pending_starts, port);
            if (!dq)
                goto done;
            Py_INCREF(dq);
        }
        if (prune_deque(dq, now) < 0)
            goto done;
        Py_ssize_t depth = PySequence_Size(dq);
        if (depth < 0)
            goto done;
        if (!nowobj) {
            nowobj = PyFloat_FromDouble(now);
            if (!nowobj)
                goto done;
        }
        PyObject *po = PyLong_FromLong(port);
        if (!po)
            goto done;
        PyObject *key = PyTuple_Pack(2, d->rid, po);
        Py_DECREF(po);
        if (!key)
            goto done;
        PyObject *dep = PyLong_FromSsize_t(depth + 1);
        if (!dep) {
            Py_DECREF(key);
            goto done;
        }
        PyObject *r = PyObject_CallFunctionObjArgs(
            d->queue_record, key, nowobj, dep, NULL);
        Py_DECREF(key);
        Py_DECREF(dep);
        if (!r)
            goto done;
        Py_DECREF(r);
    }

    {
        long pf;
        if (get_long_attr(d->lp, str_packets_forwarded, &pf) < 0)
            goto done;
        PyObject *npf = PyLong_FromLong(pf + 1);
        if (!npf)
            goto done;
        int err = PyObject_SetAttr(d->lp, str_packets_forwarded, npf);
        Py_DECREF(npf);
        if (err < 0)
            goto done;
    }
    {
        /* pkt.hop += hop_inc */
        PyObject *nh = PyLong_FromLong(hop + hop_inc);
        if (!nh)
            goto done;
        int err = PyObject_SetAttr(pkt, str_hop, nh);
        Py_DECREF(nh);
        if (err < 0)
            goto done;
    }

    if (sched_native(k, fin + extra, peer, pkt, d->lp_id) < 0)
        goto done;
    rc = 0;

done:
    Py_XDECREF(sizeobj);
    Py_XDECREF(nowobj);
    Py_XDECREF(dq);
    Py_XDECREF(pt);
    return rc;
}

/* ---------------------------------------------------------------- */
/* per-event dispatch                                                */

static int
dispatch_one(KernelObject *k, entry_t *e)
{
    if (e->dst < 0 || e->dst >= k->n_disp) {
        PyErr_SetString(PyExc_IndexError, "list index out of range");
        return -1;
    }
    disp_t *d = &k->disp[e->dst];
    PyObject *r;

    if (d->kind != DISP_PYTHON) {
        PyObject *pkt = NULL;
        if (e->native) {
            pkt = e->payload;
            Py_INCREF(pkt);
        }
        else {
            PyObject *kind = PyObject_GetAttr(e->payload, str_kind);
            if (!kind)
                return -1;
            int is_pkt = PyUnicode_Check(kind)
                && PyUnicode_CompareWithASCIIString(kind, "pkt") == 0;
            Py_DECREF(kind);
            if (is_pkt) {
                pkt = PyObject_GetAttr(e->payload, str_data);
                if (!pkt)
                    return -1;
            }
        }
        if (pkt) {
            int rc;
            if (d->kind == DISP_ROUTER)
                rc = router_arrival(k, d, pkt);
            else {
                r = PyObject_CallOneArg(d->on_pkt, pkt);
                rc = r ? 0 : -1;
                Py_XDECREF(r);
            }
            Py_DECREF(pkt);
            return rc;
        }
        /* a non-"pkt" Event: generic Python dispatch (same errors) */
        r = PyObject_CallOneArg(d->handle, e->payload);
        if (!r)
            return -1;
        Py_DECREF(r);
        return 0;
    }

    PyObject *ev = e->payload;
    int made = 0;
    if (e->native) {
        ev = materialize_event(k, e);
        if (!ev)
            return -1;
        made = 1;
    }
    r = PyObject_CallOneArg(d->handle, ev);
    if (made)
        Py_DECREF(ev);
    if (!r)
        return -1;
    Py_DECREF(r);
    return 0;
}

/* ---------------------------------------------------------------- */
/* run loops                                                         */

static PyObject *
run_sequential(KernelObject *k, double until, long long budget)
{
    long long committed = 0;
    int budget_hit = (budget == 0);
    int fail = 0;

    while (k->len && !budget_hit) {
        if (k->heap[0].time > until)
            break;
        entry_t e;
        heap_pop(k, &e);
        k->now = e.time;
        k->origin = e.dst;
        int rc = dispatch_one(k, &e);
        Py_DECREF(e.payload);
        if (rc < 0) {
            fail = 1;
            break;
        }
        committed++;
        if (committed == budget)
            budget_hit = 1;
    }
    /* the Python loop's finally clause */
    k->origin = -1;
    k->events_processed += committed;
    if (fail)
        return NULL;
    if (!budget_hit && k->now < until && until < Py_HUGE_VAL)
        k->now = until;
    return Py_BuildValue("(Li)", committed, budget_hit);
}

static PyObject *
run_conservative(KernelObject *k, double until, long long budget)
{
    long long committed = 0;
    int budget_hit = (budget == 0);
    int fail = 0;

    while (k->len && !budget_hit) {
        double floor = k->heap[0].time;
        if (floor > until)
            break;
        double window_end = floor + k->lookahead;
        k->windows_executed++;
        long long wcommitted = 0;
        while (k->len) {
            double t = k->heap[0].time;
            if (t >= window_end || t > until)
                break;
            entry_t e;
            heap_pop(k, &e);
            if (e.dst < 0 || e.dst >= k->n_counters - 1) {
                PyErr_SetString(PyExc_IndexError, "list index out of range");
                Py_DECREF(e.payload);
                fail = 1;
                break;
            }
            long part = k->parts[e.dst];
            k->current_partition = part;
            k->origin = e.dst;
            k->now = t;
            int rc = dispatch_one(k, &e);
            Py_DECREF(e.payload);
            if (rc < 0) {
                fail = 1;
                break;
            }
            k->per_part[part]++;
            wcommitted++;
            if (budget >= 0 && committed + wcommitted == budget) {
                budget_hit = 1;
                break;
            }
        }
        /* commit_window's finally clause */
        k->current_partition = -1;
        k->origin = -1;
        if (fail)
            break; /* a raising window's events never reach the total */
        committed += wcommitted;
        if (wcommitted > k->max_window_events)
            k->max_window_events = wcommitted;
    }
    /* the run loop's finally clause */
    k->events_processed += committed;
    if (fail)
        return NULL;
    if (!budget_hit && k->now < until && until < Py_HUGE_VAL)
        k->now = until;
    return Py_BuildValue("(Li)", committed, budget_hit);
}

/* ---------------------------------------------------------------- */
/* Kernel methods                                                    */

static PyObject *
Kernel_run(KernelObject *self, PyObject *args)
{
    double until;
    long long budget;
    if (!PyArg_ParseTuple(args, "dL:run", &until, &budget))
        return NULL;
    if (self->conservative)
        return run_conservative(self, until, budget);
    return run_sequential(self, until, budget);
}

/* schedule_fast's enqueue half: assign seq to an already-built Event
 * and push it.  Mirrors Engine.schedule_fast + the engine's _push
 * (including the conservative lookahead check) exactly. */
static PyObject *
Kernel_push_event(KernelObject *self, PyObject *ev)
{
    double time, send_time;
    long dst, prio, src;
    if (get_double_attr(ev, str_time, &time) < 0
        || get_long_attr(ev, str_dst, &dst) < 0
        || get_long_attr(ev, str_priority, &prio) < 0
        || get_long_attr(ev, str_src, &src) < 0
        || get_double_attr(ev, str_send_time, &send_time) < 0)
        return NULL;

    long slot = self->origin + 1;
    int64_t c = self->counters[slot];
    self->counters[slot] = c + 1;
    int64_t seq = ((int64_t)slot << SEQ_ORIGIN_SHIFT) | c;
    PyObject *seqobj = PyLong_FromLongLong((long long)seq);
    if (!seqobj)
        return NULL;
    int err = PyObject_SetAttr(ev, str_seq, seqobj);
    Py_DECREF(seqobj);
    if (err < 0)
        return NULL;

    if (self->conservative) {
        if (dst < 0 || dst >= self->n_counters - 1) {
            /* ConservativeEngine._push indexes _part_of_lp[ev.dst] */
            PyErr_SetString(PyExc_IndexError, "list index out of range");
            return NULL;
        }
        if (self->current_partition >= 0
            && self->parts[dst] != self->current_partition
            && time < send_time + self->lookahead) {
            raise_lookahead(self, ev, time, send_time);
            return NULL;
        }
    }

    entry_t e;
    e.time = time;
    e.send_time = send_time;
    e.seq = seq;
    e.prio = prio;
    e.dst = dst;
    e.src = src;
    e.native = 0;
    e.payload = ev;
    Py_INCREF(ev);
    if (heap_push(self, &e) < 0) {
        Py_DECREF(ev);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
Kernel_add_lp(KernelObject *self, PyObject *args)
{
    long partition = 0;
    if (!PyArg_ParseTuple(args, "|l:add_lp", &partition))
        return NULL;
    if (self->conservative
        && (partition < 0 || partition >= self->n_partitions)) {
        return PyErr_Format(PyExc_ValueError,
                            "partition %ld outside [0, %ld)", partition,
                            self->n_partitions);
    }
    if (self->n_counters + 1 > self->counters_cap) {
        Py_ssize_t cap = self->counters_cap * 2;
        int64_t *c = PyMem_Realloc(self->counters,
                                   (size_t)cap * sizeof(int64_t));
        if (!c)
            return PyErr_NoMemory();
        self->counters = c;
        self->counters_cap = cap;
    }
    Py_ssize_t n_lps = self->n_counters - 1;
    if (n_lps + 1 > self->parts_cap) {
        Py_ssize_t cap = self->parts_cap * 2;
        long *p = PyMem_Realloc(self->parts, (size_t)cap * sizeof(long));
        if (!p)
            return PyErr_NoMemory();
        self->parts = p;
        self->parts_cap = cap;
    }
    self->counters[self->n_counters++] = 0;
    self->parts[n_lps] = partition;
    Py_RETURN_NONE;
}

static void
disp_free(KernelObject *k)
{
    if (!k->disp)
        return;
    for (Py_ssize_t i = 0; i < k->n_disp; i++) {
        disp_t *d = &k->disp[i];
        Py_XDECREF(d->lp);
        Py_XDECREF(d->handle);
        Py_XDECREF(d->on_arrival);
        Py_XDECREF(d->ports);
        Py_XDECREF(d->busy_until);
        Py_XDECREF(d->pending_starts);
        Py_XDECREF(d->port_to_node);
        Py_XDECREF(d->ports_to_router);
        Py_XDECREF(d->app_record);
        Py_XDECREF(d->load_record);
        Py_XDECREF(d->queue_record);
        Py_XDECREF(d->rid);
        Py_XDECREF(d->on_pkt);
    }
    PyMem_Free(k->disp);
    k->disp = NULL;
    k->n_disp = 0;
}

/* item: borrowed; slot: filled with an owned ref (None stays NULL) */
static void
take_opt(PyObject **slot, PyObject *item)
{
    if (item != Py_None) {
        Py_INCREF(item);
        *slot = item;
    }
}

static PyObject *
Kernel_set_dispatch(KernelObject *self, PyObject *table)
{
    if (!PyList_Check(table)) {
        PyErr_SetString(PyExc_TypeError, "dispatch table must be a list");
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(table);
    disp_t *disp = PyMem_Calloc((size_t)(n ? n : 1), sizeof(disp_t));
    if (!disp)
        return PyErr_NoMemory();
    disp_free(self);
    self->disp = disp;
    self->n_disp = n;

    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *row = PyList_GET_ITEM(table, i);
        disp_t *d = &disp[i];
        d->lp_id = (long)i;
        if (!PyTuple_Check(row) || PyTuple_GET_SIZE(row) < 3)
            goto badrow;
        PyObject *tag = PyTuple_GET_ITEM(row, 0);
        if (!PyUnicode_Check(tag))
            goto badrow;
        d->lp = PyTuple_GET_ITEM(row, 1);
        Py_INCREF(d->lp);
        d->handle = PyTuple_GET_ITEM(row, 2);
        Py_INCREF(d->handle);
        if (PyUnicode_CompareWithASCIIString(tag, "python") == 0) {
            d->kind = DISP_PYTHON;
        }
        else if (PyUnicode_CompareWithASCIIString(tag, "terminal") == 0) {
            if (PyTuple_GET_SIZE(row) != 4)
                goto badrow;
            d->kind = DISP_TERMINAL;
            d->on_pkt = PyTuple_GET_ITEM(row, 3);
            Py_INCREF(d->on_pkt);
        }
        else if (PyUnicode_CompareWithASCIIString(tag, "router") == 0) {
            if (PyTuple_GET_SIZE(row) != 13)
                goto badrow;
            d->kind = DISP_ROUTER;
            d->on_arrival = PyTuple_GET_ITEM(row, 3);
            Py_INCREF(d->on_arrival);
            d->ports = PyTuple_GET_ITEM(row, 4);
            Py_INCREF(d->ports);
            d->busy_until = PyTuple_GET_ITEM(row, 5);
            Py_INCREF(d->busy_until);
            d->pending_starts = PyTuple_GET_ITEM(row, 6);
            Py_INCREF(d->pending_starts);
            d->port_to_node = PyTuple_GET_ITEM(row, 7);
            Py_INCREF(d->port_to_node);
            d->ports_to_router = PyTuple_GET_ITEM(row, 8);
            Py_INCREF(d->ports_to_router);
            take_opt(&d->app_record, PyTuple_GET_ITEM(row, 9));
            take_opt(&d->load_record, PyTuple_GET_ITEM(row, 10));
            take_opt(&d->queue_record, PyTuple_GET_ITEM(row, 11));
            d->rid = PyTuple_GET_ITEM(row, 12);
            Py_INCREF(d->rid);
        }
        else {
            goto badrow;
        }
        continue;
    badrow:
        disp_free(self);
        return PyErr_Format(PyExc_ValueError,
                            "malformed dispatch row for LP %zd", i);
    }
    Py_RETURN_NONE;
}

static PyObject *
Kernel_empty(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyBool_FromLong(self->len == 0);
}

static PyObject *
Kernel_peek_time(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyFloat_FromDouble(self->len ? self->heap[0].time : Py_HUGE_VAL);
}

static PyObject *
Kernel_committed_by_partition(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    PyObject *out = PyList_New(self->n_partitions);
    if (!out)
        return NULL;
    for (long p = 0; p < self->n_partitions; p++) {
        PyObject *v = PyLong_FromLongLong((long long)self->per_part[p]);
        if (!v) {
            Py_DECREF(out);
            return NULL;
        }
        PyList_SET_ITEM(out, p, v);
    }
    return out;
}

static PyObject *
Kernel_pending_count(KernelObject *self, PyObject *Py_UNUSED(ignored))
{
    return PyLong_FromSsize_t(self->len);
}

/* ---------------------------------------------------------------- */
/* getsets                                                           */

static PyObject *
Kernel_get_now(KernelObject *self, void *c)
{
    return PyFloat_FromDouble(self->now);
}

static int
Kernel_set_now(KernelObject *self, PyObject *v, void *c)
{
    double d = PyFloat_AsDouble(v);
    if (d == -1.0 && PyErr_Occurred())
        return -1;
    self->now = d;
    return 0;
}

static PyObject *
Kernel_get_origin(KernelObject *self, void *c)
{
    return PyLong_FromLong(self->origin);
}

static int
Kernel_set_origin(KernelObject *self, PyObject *v, void *c)
{
    long l = PyLong_AsLong(v);
    if (l == -1 && PyErr_Occurred())
        return -1;
    self->origin = l;
    return 0;
}

static PyObject *
Kernel_get_current_partition(KernelObject *self, void *c)
{
    return PyLong_FromLong(self->current_partition);
}

static int
Kernel_set_current_partition(KernelObject *self, PyObject *v, void *c)
{
    long l = PyLong_AsLong(v);
    if (l == -1 && PyErr_Occurred())
        return -1;
    self->current_partition = l;
    return 0;
}

static PyObject *
Kernel_get_events_processed(KernelObject *self, void *c)
{
    return PyLong_FromLongLong(self->events_processed);
}

static int
Kernel_set_events_processed(KernelObject *self, PyObject *v, void *c)
{
    long long l = PyLong_AsLongLong(v);
    if (l == -1 && PyErr_Occurred())
        return -1;
    self->events_processed = l;
    return 0;
}

static PyObject *
Kernel_get_windows_executed(KernelObject *self, void *c)
{
    return PyLong_FromLongLong(self->windows_executed);
}

static PyObject *
Kernel_get_max_window_events(KernelObject *self, void *c)
{
    return PyLong_FromLongLong(self->max_window_events);
}

static PyObject *
Kernel_get_lookahead(KernelObject *self, void *c)
{
    return PyFloat_FromDouble(self->lookahead);
}

static PyObject *
Kernel_get_n_partitions(KernelObject *self, void *c)
{
    return PyLong_FromLong(self->n_partitions);
}

/* ---------------------------------------------------------------- */
/* lifecycle                                                         */

static int
Kernel_init(KernelObject *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"n_partitions", "lookahead", "event_cls", NULL};
    long n_partitions;
    double lookahead;
    PyObject *event_cls;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "ldO:Kernel", kwlist,
                                     &n_partitions, &lookahead, &event_cls))
        return -1;
    if (n_partitions < 0) {
        PyErr_SetString(PyExc_ValueError, "n_partitions must be >= 0");
        return -1;
    }
    if (n_partitions > 0 && !(lookahead > 0.0)) {
        PyErr_SetString(PyExc_ValueError, "lookahead must be positive");
        return -1;
    }
    self->conservative = n_partitions > 0;
    self->lookahead = lookahead;
    self->n_partitions = n_partitions;
    self->now = 0.0;
    self->origin = -1;
    self->current_partition = -1;

    self->counters_cap = 8;
    self->counters = PyMem_Calloc((size_t)self->counters_cap,
                                  sizeof(int64_t));
    self->parts_cap = 8;
    self->parts = PyMem_Calloc((size_t)self->parts_cap, sizeof(long));
    self->per_part = PyMem_Calloc((size_t)(n_partitions ? n_partitions : 1),
                                  sizeof(int64_t));
    if (!self->counters || !self->parts || !self->per_part) {
        PyErr_NoMemory();
        return -1;
    }
    self->n_counters = 1; /* slot 0: the environment */

    Py_INCREF(event_cls);
    Py_XSETREF(self->event_cls, event_cls);
    return 0;
}

static int
Kernel_traverse(KernelObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->event_cls);
    for (Py_ssize_t i = 0; i < self->len; i++)
        Py_VISIT(self->heap[i].payload);
    for (Py_ssize_t i = 0; i < self->n_disp; i++) {
        disp_t *d = &self->disp[i];
        Py_VISIT(d->lp);
        Py_VISIT(d->handle);
        Py_VISIT(d->on_arrival);
        Py_VISIT(d->ports);
        Py_VISIT(d->busy_until);
        Py_VISIT(d->pending_starts);
        Py_VISIT(d->port_to_node);
        Py_VISIT(d->ports_to_router);
        Py_VISIT(d->app_record);
        Py_VISIT(d->load_record);
        Py_VISIT(d->queue_record);
        Py_VISIT(d->rid);
        Py_VISIT(d->on_pkt);
    }
    return 0;
}

static int
Kernel_clear(KernelObject *self)
{
    Py_CLEAR(self->event_cls);
    for (Py_ssize_t i = 0; i < self->len; i++)
        Py_CLEAR(self->heap[i].payload);
    self->len = 0;
    disp_free(self);
    return 0;
}

static void
Kernel_dealloc(KernelObject *self)
{
    PyObject_GC_UnTrack(self);
    Kernel_clear(self);
    PyMem_Free(self->heap);
    PyMem_Free(self->counters);
    PyMem_Free(self->parts);
    PyMem_Free(self->per_part);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

/* ---------------------------------------------------------------- */
/* type + module tables                                              */

static PyMethodDef Kernel_methods[] = {
    {"run", (PyCFunction)Kernel_run, METH_VARARGS,
     "run(until, budget) -> (committed, budget_hit)"},
    {"push_event", (PyCFunction)Kernel_push_event, METH_O,
     "assign seq to an Event and push it on the heap"},
    {"add_lp", (PyCFunction)Kernel_add_lp, METH_VARARGS,
     "add_lp(partition=0): grow the per-LP seq/partition arrays"},
    {"set_dispatch", (PyCFunction)Kernel_set_dispatch, METH_O,
     "install the per-LP dispatch table (list of tuples)"},
    {"empty", (PyCFunction)Kernel_empty, METH_NOARGS, NULL},
    {"peek_time", (PyCFunction)Kernel_peek_time, METH_NOARGS, NULL},
    {"pending_count", (PyCFunction)Kernel_pending_count, METH_NOARGS, NULL},
    {"committed_by_partition", (PyCFunction)Kernel_committed_by_partition,
     METH_NOARGS, NULL},
    {NULL, NULL, 0, NULL},
};

static PyGetSetDef Kernel_getset[] = {
    {"now", (getter)Kernel_get_now, (setter)Kernel_set_now, NULL, NULL},
    {"origin", (getter)Kernel_get_origin, (setter)Kernel_set_origin, NULL,
     NULL},
    {"current_partition", (getter)Kernel_get_current_partition,
     (setter)Kernel_set_current_partition, NULL, NULL},
    {"events_processed", (getter)Kernel_get_events_processed,
     (setter)Kernel_set_events_processed, NULL, NULL},
    {"windows_executed", (getter)Kernel_get_windows_executed, NULL, NULL,
     NULL},
    {"max_window_events", (getter)Kernel_get_max_window_events, NULL, NULL,
     NULL},
    {"lookahead", (getter)Kernel_get_lookahead, NULL, NULL, NULL},
    {"n_partitions", (getter)Kernel_get_n_partitions, NULL, NULL, NULL},
    {NULL, NULL, NULL, NULL, NULL},
};

static PyTypeObject KernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_union_accel.Kernel",
    .tp_basicsize = sizeof(KernelObject),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled (time, priority, seq) event heap + commit loop",
    .tp_new = PyType_GenericNew,
    .tp_init = (initproc)Kernel_init,
    .tp_dealloc = (destructor)Kernel_dealloc,
    .tp_traverse = (traverseproc)Kernel_traverse,
    .tp_clear = (inquiry)Kernel_clear,
    .tp_methods = Kernel_methods,
    .tp_getset = Kernel_getset,
};

static struct PyModuleDef accel_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_union_accel",
    .m_doc = "Compiled event-loop kernel for the repro PDES engines.",
    .m_size = -1,
};

#define INTERN(var, s)                                                    \
    do {                                                                  \
        var = PyUnicode_InternFromString(s);                              \
        if (!var)                                                         \
            return NULL;                                                  \
    } while (0)

PyMODINIT_FUNC
PyInit__union_accel(void)
{
    INTERN(str_time, "time");
    INTERN(str_priority, "priority");
    INTERN(str_seq, "seq");
    INTERN(str_dst, "dst");
    INTERN(str_src, "src");
    INTERN(str_send_time, "send_time");
    INTERN(str_kind, "kind");
    INTERN(str_data, "data");
    INTERN(str_path, "path");
    INTERN(str_hop, "hop");
    INTERN(str_dst_node, "dst_node");
    INTERN(str_size, "size");
    INTERN(str_app_id, "app_id");
    INTERN(str_popleft, "popleft");
    INTERN(str_append, "append");
    INTERN(str_packets_forwarded, "packets_forwarded");

    if (PyType_Ready(&KernelType) < 0)
        return NULL;
    PyObject *m = PyModule_Create(&accel_module);
    if (!m)
        return NULL;
    Py_INCREF(&KernelType);
    if (PyModule_AddObject(m, "Kernel", (PyObject *)&KernelType) < 0) {
        Py_DECREF(&KernelType);
        Py_DECREF(m);
        return NULL;
    }
    if (PyModule_AddIntConstant(m, "SEQ_ORIGIN_SHIFT", SEQ_ORIGIN_SHIFT) < 0) {
        Py_DECREF(m);
        return NULL;
    }
    return m;
}
