"""Lazy compilation and loading of the ``_union_accel`` C kernel.

There is no build step at install time and no build-system dependency:
the kernel source ships as package data (``_kernel.c``) and is compiled
on first use with whatever C compiler the host has, into a per-user
cache keyed by the source hash (so editing the source, switching
interpreters or upgrading the package each get a fresh build, and
concurrent processes race benignly via an atomic rename).

Degradation is a feature, not an error: *anything* that prevents a
native kernel -- no compiler, a failing compile, a non-POSIX host, the
``UNION_ACCEL_DISABLE`` environment switch -- raises
:exc:`AccelUnavailable` with a human-readable reason, and the accel
engine factories fall back to the pure-Python engines (which commit the
bit-identical event sequence) recording that reason.  ``pip install``
and import never require a compiler.

Environment switches:

``UNION_ACCEL_DISABLE``
    Any non-empty value forces the fallback path (useful to pin the
    Python backend fleet-wide, and how CI exercises a compiler-less
    host on one that has a compiler).
``UNION_ACCEL_CACHE``
    Overrides the build-cache directory (default
    ``~/.cache/union-repro/accel``).
"""

from __future__ import annotations

import hashlib
import importlib.util
import os
import shutil
import subprocess
import sys
import sysconfig
import tempfile
from importlib.machinery import ExtensionFileLoader
from pathlib import Path

__all__ = ["AccelUnavailable", "load_kernel", "kernel_status"]

MODULE_NAME = "_union_accel"
_SOURCE = Path(__file__).with_name("_kernel.c")

#: Memoized load outcome: ``(module, "")`` or ``(None, reason)``.
#: ``UNION_ACCEL_DISABLE`` is consulted *before* the memo so tests can
#: toggle the fallback per-process without clearing anything.
_memo: tuple[object, str] | None = None


class AccelUnavailable(RuntimeError):
    """The compiled kernel cannot be used; the reason is the message."""


def _cache_dir() -> Path:
    override = os.environ.get("UNION_ACCEL_CACHE")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "union-repro" / "accel"


def _find_compiler() -> str | None:
    """The C compiler to invoke: the interpreter's own, else cc/gcc/clang."""
    cc = sysconfig.get_config_var("CC")
    if cc:
        exe = shutil.which(cc.split()[0])
        if exe:
            return exe
    for cand in ("cc", "gcc", "clang"):
        exe = shutil.which(cand)
        if exe:
            return exe
    return None


def _build_key(source: bytes) -> str:
    """Cache key: source bytes + interpreter ABI, nothing else."""
    h = hashlib.sha256()
    h.update(source)
    h.update(sys.implementation.cache_tag.encode())
    return h.hexdigest()[:16]


def _artifact_path(key: str) -> Path:
    suffix = sysconfig.get_config_var("EXT_SUFFIX") or ".so"
    return _cache_dir() / f"{MODULE_NAME}.{key}{suffix}"


def _compile(cc: str, out: Path) -> None:
    """Compile the kernel source to ``out`` (atomic via rename).

    No ``-ffast-math`` and no reassociation flags: the kernel's floats
    must round exactly as CPython's, or bit-identical fallback parity
    breaks.
    """
    out.parent.mkdir(parents=True, exist_ok=True)
    include = sysconfig.get_paths()["include"]
    fd, tmp = tempfile.mkstemp(suffix=out.suffix, dir=out.parent)
    os.close(fd)
    cmd = [cc, "-O2", "-fPIC", "-shared", f"-I{include}",
           str(_SOURCE), "-o", tmp]
    try:
        proc = subprocess.run(cmd, capture_output=True, text=True, timeout=120)
    except (OSError, subprocess.TimeoutExpired) as exc:
        os.unlink(tmp)
        raise AccelUnavailable(f"compiler invocation failed: {exc}") from exc
    if proc.returncode != 0:
        os.unlink(tmp)
        detail = (proc.stderr or proc.stdout or "").strip()
        raise AccelUnavailable(
            f"compile failed (exit {proc.returncode}): {detail[:400]}")
    os.replace(tmp, out)


def _load(path: Path):
    loader = ExtensionFileLoader(MODULE_NAME, str(path))
    spec = importlib.util.spec_from_file_location(
        MODULE_NAME, str(path), loader=loader)
    mod = importlib.util.module_from_spec(spec)
    loader.exec_module(mod)
    return mod


def _load_kernel_uncached():
    if os.name != "posix":
        raise AccelUnavailable(
            f"compiled kernel is only built on POSIX hosts (os.name={os.name!r})")
    if not _SOURCE.is_file():
        raise AccelUnavailable(f"kernel source missing: {_SOURCE}")
    source = _SOURCE.read_bytes()
    path = _artifact_path(_build_key(source))
    if not path.is_file():
        cc = _find_compiler()
        if cc is None:
            raise AccelUnavailable("no C compiler found (tried the "
                                   "interpreter's CC, then cc/gcc/clang)")
        try:
            _compile(cc, path)
        except AccelUnavailable:
            raise
        except OSError as exc:
            raise AccelUnavailable(f"cannot write build cache: {exc}") from exc
    try:
        return _load(path)
    except ImportError as exc:
        raise AccelUnavailable(f"built kernel failed to load: {exc}") from exc


def load_kernel():
    """The compiled kernel module, building it on first use.

    Raises :exc:`AccelUnavailable` (with the reason) when the kernel
    cannot be compiled, loaded, or is disabled via environment.  The
    outcome -- success or failure -- is memoized per process; only the
    ``UNION_ACCEL_DISABLE`` check is re-evaluated on every call.
    """
    if os.environ.get("UNION_ACCEL_DISABLE"):
        raise AccelUnavailable("disabled via UNION_ACCEL_DISABLE")
    global _memo
    if _memo is None:
        try:
            _memo = (_load_kernel_uncached(), "")
        except AccelUnavailable as exc:
            _memo = (None, str(exc))
    mod, reason = _memo
    if mod is None:
        raise AccelUnavailable(reason)
    return mod


def kernel_status() -> dict:
    """Availability probe: ``{"available", "reason", "compiler"}``.

    Attempts the (memoized) build/load, so the first call on a
    compiler-equipped host pays the one-time compile.
    """
    try:
        load_kernel()
        return {"available": True, "reason": "",
                "compiler": _find_compiler()}
    except AccelUnavailable as exc:
        return {"available": False, "reason": str(exc),
                "compiler": _find_compiler()}


def _reset_for_tests() -> None:
    """Drop the memoized load outcome (test helper)."""
    global _memo
    _memo = None
