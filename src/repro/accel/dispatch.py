"""Per-LP dispatch tables for the compiled kernel.

The kernel dispatches each committed event by destination LP through a
table of rows, one per LP, built fresh at every ``run()`` entry (LPs
register between runs, telemetry bindings are fixed at fabric
construction -- rebuilding is O(n_lps) and keeps the table honest):

``("python", lp, lp.handle)``
    Generic LP: every event goes through the bound Python handler.
``("router", lp, handle, _on_arrival, _ports, busy_until,
pending_starts, _port_to_node, _ports_to_router, app_record,
load_record, queue_record, rid)``
    :class:`~repro.network.router.RouterLP`'s own containers; the
    kernel replays ``_on_arrival`` natively against them, including the
    multi-candidate adaptive port choice (shallowest queue, with the
    same deque pruning ``queue_depth`` performs).
``("terminal", lp, handle, _on_pkt)``
    :class:`~repro.network.terminal.TerminalLP`: ``pkt`` deliveries
    call the bound ``_on_pkt`` directly; other kinds go through
    ``handle``.

LPs advertise their row via ``accel_export()`` (returning ``None`` --
e.g. for subclasses -- means generic dispatch).  The row shapes here
and in ``_kernel.c``'s ``Kernel_set_dispatch`` must stay in lockstep.
"""

from __future__ import annotations


def build_dispatch(lps) -> list:
    """The kernel dispatch table for ``lps`` (one row per LP, in order)."""
    table = []
    for lp in lps:
        export = getattr(lp, "accel_export", None)
        row = export() if export is not None else None
        table.append(row if row is not None else ("python", lp, lp.handle))
    return table
