"""Accelerated engines: the compiled kernel behind the Engine API.

Two compiled engines wrap the C kernel (:mod:`repro.accel.build`):

:class:`AccelSequentialEngine`
    :class:`~repro.pdes.sequential.SequentialEngine` semantics with the
    heap and commit loop in C.
:class:`AccelConservativeEngine`
    :class:`~repro.pdes.conservative.ConservativeEngine` semantics
    (YAWNS windows, per-partition stats, lookahead enforcement) with
    the window loop in C.

Both subclass their Python counterpart, so every ``isinstance`` gate in
the tree (telemetry gauges, scenario reduction) keeps working; the
kernel owns ``now``, the seq counters and the pending heap, and the
engine syncs the public counters (``events_processed``,
``windows_executed``, ...) back to plain attributes after every run --
in a ``finally``, so post-mortem reads stay accurate when a handler
raises.

:class:`PythonSequentialEngine` / :class:`PythonConservativeEngine` are
the fallback backends: behaviorally the plain Python engines (hence
trivially bit-identical), plus the ``backend``/``backend_reason``
surface the scenario JSON records.  The factories
(:func:`accel_sequential_engine` / :func:`accel_conservative_engine`)
pick compiled-else-fallback and never raise for a missing compiler.

Determinism contract: a compiled engine commits the identical event
sequence -- same ``(time, priority, seq)`` keys, same RNG draw order,
bit-identical floats -- as its Python counterpart.  The kernel computes
in IEEE doubles in the same operation order and is built without
``-ffast-math``; the contract is pinned by the golden/parity oracles
and the fuzz ``parity`` invariant.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.accel.build import AccelUnavailable, load_kernel
from repro.accel.dispatch import build_dispatch
from repro.pdes.conservative import ConservativeEngine
from repro.pdes.event import Event, Priority
from repro.pdes.lp import LP
from repro.pdes.sequential import SequentialEngine

__all__ = [
    "AccelSequentialEngine",
    "AccelConservativeEngine",
    "PythonSequentialEngine",
    "PythonConservativeEngine",
    "accel_sequential_engine",
    "accel_conservative_engine",
]

BACKENDS = ("compiled", "python")


class _CompiledMixin:
    """The kernel-owning half shared by both compiled engines.

    Must precede the Python engine class in the MRO; ``self._kernel``
    is created by the concrete ``__init__`` *before* calling
    ``super().__init__()`` (which assigns ``self.now`` through the
    property below).
    """

    backend = "compiled"
    backend_reason = ""

    @property
    def now(self) -> float:
        # Live during native dispatch: handlers and queue probes called
        # back from C read the kernel clock mid-run.
        return self._kernel.now

    @now.setter
    def now(self, value: float) -> None:
        self._kernel.now = value

    def schedule_fast(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.NETWORK,
        src: int = -1,
    ) -> Event:
        # Event construction stays in Python (models hold event refs);
        # seq assignment and the heap push happen in the kernel, which
        # packs (origin + 1) << 40 | counter exactly like
        # Engine.schedule_fast.
        ev = Event(time, dst, kind, data, priority, src,
                   send_time=self._kernel.now)
        self._kernel.push_event(ev)
        return ev

    def _push(self, ev: Event) -> None:
        raise NotImplementedError(
            "the compiled kernel owns the event heap; schedule through "
            "schedule_fast/schedule/schedule_at")

    def empty(self) -> bool:
        return self._kernel.empty()

    def peek_time(self) -> float:
        """Timestamp of the next pending event (``inf`` if drained)."""
        return self._kernel.peek_time()


class AccelSequentialEngine(_CompiledMixin, SequentialEngine):
    """Sequential scheduling with the heap + commit loop in C.

    Raises :exc:`AccelUnavailable` at construction when the kernel
    cannot be built; use :func:`accel_sequential_engine` for the
    fall-back-cleanly behavior.
    """

    def __init__(self) -> None:
        mod = load_kernel()  # raises AccelUnavailable
        self._kernel = mod.Kernel(0, 0.0, Event)
        super().__init__()

    def register(self, lp: LP, partition: int | None = None) -> int:
        lp_id = super().register(lp, partition)
        self._kernel.add_lp(0)
        return lp_id

    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        kern = self._kernel
        kern.set_dispatch(build_dispatch(self.lps))
        budget = -1 if max_events is None else max_events
        try:
            kern.run(until, budget)
        finally:
            self.events_processed = kern.events_processed
            self._origin = -1
        self._run_end_hooks()
        return kern.now


class AccelConservativeEngine(_CompiledMixin, ConservativeEngine):
    """Conservative (YAWNS) scheduling with the window loop in C.

    Raises :exc:`AccelUnavailable` at construction when the kernel
    cannot be built; use :func:`accel_conservative_engine` for the
    fall-back-cleanly behavior.
    """

    def __init__(
        self,
        lookahead: float,
        n_partitions: int = 4,
        partition_fn: Callable[[int], int] | None = None,
    ) -> None:
        # Validate before touching the kernel so bad arguments raise
        # the exact errors ConservativeEngine documents.
        if lookahead <= 0:
            raise ValueError(f"lookahead must be positive, got {lookahead}")
        if n_partitions < 1:
            raise ValueError(f"need at least one partition, got {n_partitions}")
        mod = load_kernel()  # raises AccelUnavailable
        self._kernel = mod.Kernel(n_partitions, lookahead, Event)
        super().__init__(lookahead, n_partitions, partition_fn)

    def register(self, lp: LP, partition: int | None = None) -> int:
        lp_id = super().register(lp, partition)
        self._kernel.add_lp(self._part_of_lp[lp_id])
        return lp_id

    def schedule_control(
        self,
        time: float,
        dst: int,
        kind: str,
        data: Any = None,
        priority: int = Priority.MPI,
        src: int = -1,
    ) -> Event:
        # Contract-exempt path: suspend the kernel's executing-partition
        # marker (which gates its push-side lookahead check), exactly as
        # ConservativeEngine.schedule_control suspends its own.
        kern = self._kernel
        saved = kern.current_partition
        kern.current_partition = -1
        try:
            return self.schedule_at(time, dst, kind, data, priority, src)
        finally:
            kern.current_partition = saved

    def pending_floor(self) -> float:
        return self._kernel.peek_time()

    def commit_window(self, window_end: float, until: float = float("inf"),
                      budget: int = -1) -> tuple[int, bool]:
        raise NotImplementedError(
            "the compiled kernel commits whole windows internally; "
            "drive it through run()/step()")

    def run(self, until: float = float("inf"), max_events: int | None = None) -> float:
        kern = self._kernel
        kern.set_dispatch(build_dispatch(self.lps))
        budget = -1 if max_events is None else max_events
        try:
            kern.run(until, budget)
        finally:
            # Sync the public counters (telemetry gauges and scenario
            # reduction read them between runs / post-mortem).
            self.events_processed = kern.events_processed
            self.windows_executed = kern.windows_executed
            self.max_window_events = kern.max_window_events
            self.committed_by_partition = kern.committed_by_partition()
            self._origin = -1
            self._current_partition = -1
        self._run_end_hooks()
        return kern.now


class PythonSequentialEngine(SequentialEngine):
    """The ``backend: python`` fallback: a plain sequential engine that
    records which backend ran and why."""

    backend = "python"
    backend_reason = "backend 'python' requested"


class PythonConservativeEngine(ConservativeEngine):
    """The ``backend: python`` fallback of the conservative engine."""

    backend = "python"
    backend_reason = "backend 'python' requested"


def _check_backend(backend: str) -> None:
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown accel backend {backend!r}; choose from {BACKENDS}")


def accel_sequential_engine(backend: str = "compiled") -> SequentialEngine:
    """An accelerated sequential engine, falling back cleanly.

    ``backend="compiled"`` uses the C kernel when it can be built and
    otherwise returns the Python fallback with
    ``backend_reason`` recording why; ``backend="python"`` forces the
    fallback.  Never raises for a missing compiler.
    """
    _check_backend(backend)
    if backend == "python":
        return PythonSequentialEngine()
    try:
        return AccelSequentialEngine()
    except AccelUnavailable as exc:
        eng = PythonSequentialEngine()
        eng.backend_reason = str(exc)
        return eng


def accel_conservative_engine(
    topo: Any,
    config: Any = None,
    partitions: int = 4,
    lookahead: float | None = None,
    backend: str = "compiled",
) -> ConservativeEngine:
    """An accelerated conservative engine partitioned for ``topo``.

    Reuses :func:`repro.parallel.conservative_engine` for the partition
    plan and lookahead derivation (structural errors -- too many
    partitions, an unjustifiable lookahead -- surface identically);
    only the scheduler core differs by backend.
    """
    from repro.parallel import conservative_engine

    _check_backend(backend)
    if backend == "compiled":
        try:
            load_kernel()
        except AccelUnavailable as exc:
            eng = conservative_engine(topo, config, partitions, lookahead,
                                      engine_cls=PythonConservativeEngine)
            eng.backend_reason = str(exc)
            return eng
        return conservative_engine(topo, config, partitions, lookahead,
                                   engine_cls=AccelConservativeEngine)
    return conservative_engine(topo, config, partitions, lookahead,
                               engine_cls=PythonConservativeEngine)
