"""repro.accel: compiled event-kernel subsystem with pure-Python fallback.

The hot loop of every simulation -- heap pops, Router/Terminal ``pkt``
dispatch, downstream scheduling -- optionally runs in a small C
extension (``_kernel.c``) compiled lazily on first use.  The committed
event sequence is bit-identical to the pure-Python engines, the
fallback is automatic and recorded, and nothing at install or import
time requires a compiler.  See ``docs/engines.md`` ("Accelerated
kernels") and :mod:`repro.accel.build` for the build/caching story.
"""

from repro.accel.build import AccelUnavailable, kernel_status, load_kernel
from repro.accel.engines import (
    AccelConservativeEngine,
    AccelSequentialEngine,
    PythonConservativeEngine,
    PythonSequentialEngine,
    accel_conservative_engine,
    accel_sequential_engine,
)

__all__ = [
    "AccelUnavailable",
    "kernel_status",
    "load_kernel",
    "AccelSequentialEngine",
    "AccelConservativeEngine",
    "PythonSequentialEngine",
    "PythonConservativeEngine",
    "accel_sequential_engine",
    "accel_conservative_engine",
]
