"""Pluggable telemetry sinks: where exported metric rows go.

Every sink implements ``write(rows, header)`` where ``rows`` is an
iterable of row dicts (see :mod:`repro.telemetry.schema`) and
``header`` carries the schema tag plus caller metadata.  Four built-in
sinks (``scripts/check_docs.py`` asserts docs/telemetry.md names each):

* :class:`MemorySink` -- collects rows into a list (tests, in-process
  consumers);
* :class:`JsonlSink` -- one JSON object per line, header object first
  (the ``--metrics <path.jsonl>`` CLI format);
* :class:`CsvSink` -- flat five-column CSV (``key,kind,unit,value,
  data``), scalar values in ``value``, structured payloads JSON-encoded
  in ``data``;
* :class:`SummarySink` -- reduces rows to one nested summary dict (the
  ``metrics`` block scenario results embed).
"""

from __future__ import annotations

import csv
import json
import os
from typing import Any, Iterable, TextIO

_SCALAR_FIELDS = ("value",)
_FIXED = ("key", "kind", "unit")


class MemorySink:
    """Hold every row in memory (``sink.rows`` after ``write``)."""

    def __init__(self) -> None:
        self.rows: list[dict[str, Any]] = []
        self.header: dict[str, Any] = {}

    def write(self, rows: Iterable[dict[str, Any]], header: dict[str, Any]) -> None:
        self.header = dict(header)
        self.rows.extend(rows)


class _FileSink:
    """Shared open/close handling for path-or-stream sinks."""

    def __init__(self, target: str | os.PathLike | TextIO) -> None:
        self._target = target

    def _open(self):
        if hasattr(self._target, "write"):
            return self._target, False
        return open(self._target, "w", encoding="utf-8"), True


class JsonlSink(_FileSink):
    """One JSON object per line: the header first, then every row."""

    def write(self, rows: Iterable[dict[str, Any]], header: dict[str, Any]) -> None:
        fh, owned = self._open()
        try:
            n = 0
            fh.write(json.dumps(header, sort_keys=True) + "\n")
            for row in rows:
                fh.write(json.dumps(row) + "\n")
                n += 1
            self.rows_written = n
        finally:
            if owned:
                fh.close()


class CsvSink(_FileSink):
    """Flat CSV: ``key,kind,unit,value,data``.

    Scalar instruments (counter/gauge) fill ``value``; structured
    payloads (windowed bins, histogram buckets and stats) are
    JSON-encoded into ``data``.  The header dict is written as a
    leading comment line (``# schema=... key=value ...``).
    """

    def write(self, rows: Iterable[dict[str, Any]], header: dict[str, Any]) -> None:
        fh, owned = self._open()
        try:
            fh.write("# " + " ".join(f"{k}={v}" for k, v in sorted(header.items())) + "\n")
            writer = csv.writer(fh)
            writer.writerow(["key", "kind", "unit", "value", "data"])
            n = 0
            for row in rows:
                extra = {k: v for k, v in row.items()
                         if k not in _FIXED and k not in _SCALAR_FIELDS}
                writer.writerow([
                    row["key"], row["kind"], row["unit"],
                    row.get("value", ""),
                    json.dumps(extra) if extra else "",
                ])
                n += 1
            self.rows_written = n
        finally:
            if owned:
                fh.close()


class SummarySink:
    """Reduce rows to one JSON-able summary dict (``sink.summary``).

    Shape::

        {"schema": ..., "rows": N,
         "metrics": {row_key: {kind, unit, ...payload}}}

    Windowed rows are compacted to total/peak/bin-count instead of the
    full sparse bins, keeping the summary small enough to embed in a
    scenario result document.
    """

    def __init__(self) -> None:
        self.summary: dict[str, Any] = {}

    def write(self, rows: Iterable[dict[str, Any]], header: dict[str, Any]) -> None:
        metrics: dict[str, Any] = {}
        n = 0
        for row in rows:
            payload = {k: v for k, v in row.items() if k != "key"}
            if row["kind"] == "windowed":
                bins = payload.pop("bins", {})
                values = list(bins.values())
                if payload.get("agg") != "max":
                    # Summing per-window *maxima* is meaningless, so a
                    # max-aggregated series reports peak only.
                    payload["total"] = sum(values)
                payload["peak"] = max(values) if values else 0
                payload["nonzero_bins"] = len(values)
            elif row["kind"] == "histogram":
                payload.pop("buckets", None)
            metrics[row["key"]] = payload
            n += 1
        self.summary = dict(header)
        self.summary["rows"] = n
        self.summary["metrics"] = metrics


#: Registered sink names (docs/telemetry.md must name them all;
#: ``scripts/check_docs.py`` asserts it).
SINK_KINDS: dict[str, type] = {
    "memory": MemorySink,
    "jsonl": JsonlSink,
    "csv": CsvSink,
    "summary": SummarySink,
}
