"""Versioned schemas for everything the telemetry pipeline emits.

Three independent version stamps:

* :data:`TELEMETRY_SCHEMA` tags metric *row* streams (the JSONL/CSV
  sinks put it in their header/first column) -- bump when the row shape
  changes;
* :data:`RESULT_SCHEMA_VERSION` tags the scenario result documents
  (``ScenarioResult.to_json_dict()`` / ``union-sim scenario --json``) --
  bump when that document's shape changes, so downstream consumers can
  detect the format instead of sniffing keys;
* :data:`OBSERVATION_SCHEMA` tags the live session snapshots
  (``SimulationSession.observe()`` / the ``repro.env`` observations) --
  bump when the observation field set changes.

Row shape (``union-sim.telemetry/v1``) -- one JSON object per metric
row, kind-specific payload next to three fixed fields:

======== ======================================================
field    meaning
======== ======================================================
key      hierarchical dot key (``net.router.12.app.0.bytes``)
kind     instrument kind (see ``INSTRUMENT_KINDS``)
unit     measurement unit (``bytes``, ``seconds``, ``packets``…)
======== ======================================================

plus per kind: ``value`` (counter/gauge), ``window``/``bins``
(windowed; ``bins`` maps bin index -> aggregated value, sparse), and
``count``/``sum``/``min``/``max``/``buckets`` (histogram; ``buckets``
maps upper-edge -> count).
"""

from __future__ import annotations

#: Version tag for metric row streams (JSONL header, CSV column).
TELEMETRY_SCHEMA = "union-sim.telemetry/v1"

#: Version of the scenario result document (``to_json_dict`` output).
RESULT_SCHEMA_VERSION = 1

#: Version tag for the live state snapshots a
#: :class:`repro.union.session.SimulationSession` assembles from this
#: store (``Observation.to_dict()["schema"]``) -- bump when the
#: observation's field set changes, so controllers trained against one
#: shape can detect another.
OBSERVATION_SCHEMA = "union-sim.observation/v1"
