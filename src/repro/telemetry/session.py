"""The :class:`Telemetry` session: one registry of instruments per run.

A session owns every instrument of one simulation under hierarchical
dot keys, decides which metric *families* are enabled, and exports
expanded rows through pluggable sinks.  The whole system funnels its
measurements through one of these: the fabric registers the router/link
instruments, the MPI runtime its per-job metrics, and the scenario
runner reduces its report from the same store.

Enablement is decided **once, at instrument creation** -- never on the
record path.  ``telemetry.counter(key, default=...)`` returns either a
live instrument or the shared :data:`~repro.telemetry.instruments.NULL`
no-op; hot paths check ``instrument.enabled`` at wiring time and skip
the call entirely when the family is off, making a disabled family
strictly zero-cost.

Families are toggled by glob patterns (:mod:`fnmatch` syntax) matched
against the family key::

    Telemetry(enable=("net.router.queue",), disable=("net.link.*",))

``disable`` wins over ``enable``; keys matching neither keep the
creator's declared default (the seed instruments default on, expensive
opt-ins like queue occupancy default off).
"""

from __future__ import annotations

from fnmatch import fnmatchcase
from typing import Any, Callable, Iterable, Iterator

from repro.telemetry.instruments import (
    NULL,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    WindowedSeries,
)
from repro.telemetry.schema import TELEMETRY_SCHEMA

Patterns = str | Iterable[str] | None


def _as_patterns(patterns: Patterns) -> tuple[str, ...]:
    if patterns is None:
        return ()
    if isinstance(patterns, str):
        return (patterns,)
    return tuple(patterns)


def match_key(key: str, patterns: Patterns) -> bool:
    """True when ``key`` matches any glob in ``patterns`` (``None`` = all)."""
    pats = _as_patterns(patterns)
    if not pats:
        return True
    return any(fnmatchcase(key, p) for p in pats)


class Telemetry:
    """One run's metric store: named instruments plus export plumbing."""

    def __init__(self, enable: Patterns = (), disable: Patterns = ()) -> None:
        self._enable = _as_patterns(enable)
        self._disable = _as_patterns(disable)
        self._instruments: dict[str, Instrument] = {}

    # -- enablement --------------------------------------------------------
    def enabled(self, key: str, default: bool = True) -> bool:
        """Whether the family ``key`` records (disable > enable > default)."""
        if self._disable and any(fnmatchcase(key, p) for p in self._disable):
            return False
        if self._enable and any(fnmatchcase(key, p) for p in self._enable):
            return True
        return default

    # -- registration ------------------------------------------------------
    def register(self, instrument: Instrument, default: bool = True,
                 replace: bool = False) -> Instrument:
        """Register a ready instrument under its family key.

        Returns the instrument, or the shared no-op when its family is
        disabled (the instrument is then *not* registered and produces
        no rows).  Registering a second instrument under an existing
        key is an error unless ``replace`` is set -- the idiom for a
        new simulation superseding a finished one on a shared session
        (a fresh fabric replaces the previous fabric's instruments).
        """
        if not self.enabled(instrument.key, default):
            return NULL
        existing = self._instruments.get(instrument.key)
        if existing is not None:
            if not replace:
                raise ValueError(
                    f"instrument {instrument.key!r} is already registered"
                )
            self._check_kind(existing, type(instrument).kind)
        self._instruments[instrument.key] = instrument
        return instrument

    @staticmethod
    def _check_kind(existing: Instrument, kind: str) -> None:
        # Replacement must preserve the kind: superseding a series with
        # a gauge (a mistyped key) would silently destroy recorded data.
        if type(existing).kind != kind:
            raise ValueError(
                f"instrument {existing.key!r} already registered with kind "
                f"{existing.kind!r}, not {kind!r}"
            )

    def _create(self, cls: type, key: str, default: bool, replace: bool,
                kwargs: dict) -> Instrument:
        existing = self._instruments.get(key)
        if existing is not None:
            self._check_kind(existing, cls.kind)
            if not replace:
                return existing
        if not self.enabled(key, default):
            return NULL
        inst = cls(key, **kwargs)
        self._instruments[key] = inst
        return inst

    def counter(self, key: str, unit: str = "", doc: str = "",
                default: bool = True, replace: bool = False) -> Counter | Instrument:
        return self._create(Counter, key, default, replace, dict(unit=unit, doc=doc))

    def gauge(self, key: str, unit: str = "", doc: str = "",
              fn: Callable[[], int | float] | None = None,
              default: bool = True, replace: bool = False) -> Gauge | Instrument:
        return self._create(Gauge, key, default, replace, dict(unit=unit, doc=doc, fn=fn))

    def windowed(self, key: str, window: float, unit: str = "", doc: str = "",
                 agg: str = "sum", template: str | None = None,
                 default: bool = True, replace: bool = False) -> WindowedSeries | Instrument:
        return self._create(
            WindowedSeries, key, default, replace,
            dict(window=window, unit=unit, doc=doc, agg=agg, template=template),
        )

    def histogram(self, key: str, edges: Iterable[float] | None = None,
                  unit: str = "", doc: str = "",
                  default: bool = True, replace: bool = False) -> Histogram | Instrument:
        return self._create(Histogram, key, default, replace,
                            dict(edges=edges, unit=unit, doc=doc))

    # -- lookup ------------------------------------------------------------
    def get(self, key: str) -> Instrument | None:
        """The registered instrument at ``key`` (family keys only)."""
        return self._instruments.get(key)

    def instruments(self) -> list[Instrument]:
        return list(self._instruments.values())

    def keys(self) -> list[str]:
        return list(self._instruments)

    # -- export ------------------------------------------------------------
    def rows(self, pattern: Patterns = None) -> Iterator[dict[str, Any]]:
        """Expanded metric rows whose *row* key matches ``pattern``.

        Instruments iterate in registration order; labeled instruments
        expand their rows in sorted label order, so row streams are
        deterministic for a deterministic simulation.
        """
        for inst in self._instruments.values():
            for row in inst.rows():
                if match_key(row["key"], pattern):
                    yield row

    def snapshot(self, pattern: Patterns = None) -> dict[str, dict[str, Any]]:
        """``{row_key: payload}`` for every matching row (JSON-able)."""
        out: dict[str, dict[str, Any]] = {}
        for row in self.rows(pattern):
            payload = dict(row)
            out[payload.pop("key")] = payload
        return out

    def value(self, key: str, default: Any = None) -> Any:
        """Shortcut: the ``value`` field of the single row at ``key``."""
        for row in self.rows(key):
            return row.get("value", default)
        return default

    def export(self, sink, pattern: Patterns = None,
               meta: dict[str, Any] | None = None):
        """Write every matching row through ``sink``; returns the sink."""
        header = {"schema": TELEMETRY_SCHEMA}
        if meta:
            header.update(meta)
        sink.write(self.rows(pattern), header)
        return sink
