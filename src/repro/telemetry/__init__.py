"""Unified telemetry: one probe/sink pipeline for every measurement.

Public surface:

* :class:`Telemetry` -- per-run session owning named instruments under
  hierarchical dot keys, with glob-based family enable/disable;
* instruments -- :class:`Counter`, :class:`Gauge`,
  :class:`WindowedSeries`, :class:`Histogram` (and the shared
  :data:`NULL` no-op for disabled families);
* sinks -- :class:`MemorySink`, :class:`JsonlSink`, :class:`CsvSink`,
  :class:`SummarySink`;
* schema tags -- :data:`TELEMETRY_SCHEMA` (row streams),
  :data:`RESULT_SCHEMA_VERSION` (scenario result documents).

The taxonomy, key-naming conventions and sink formats are documented in
``docs/telemetry.md``.
"""

from repro.telemetry.instruments import (
    INSTRUMENT_KINDS,
    LATENCY_EDGES,
    NULL,
    Counter,
    Gauge,
    Histogram,
    Instrument,
    NullInstrument,
    WindowedSeries,
    metric_segment,
)
from repro.telemetry.schema import (
    OBSERVATION_SCHEMA,
    RESULT_SCHEMA_VERSION,
    TELEMETRY_SCHEMA,
)
from repro.telemetry.session import Telemetry, match_key
from repro.telemetry.sinks import (
    SINK_KINDS,
    CsvSink,
    JsonlSink,
    MemorySink,
    SummarySink,
)

__all__ = [
    "Telemetry",
    "Instrument",
    "Counter",
    "Gauge",
    "WindowedSeries",
    "Histogram",
    "NullInstrument",
    "NULL",
    "LATENCY_EDGES",
    "INSTRUMENT_KINDS",
    "MemorySink",
    "JsonlSink",
    "CsvSink",
    "SummarySink",
    "SINK_KINDS",
    "TELEMETRY_SCHEMA",
    "RESULT_SCHEMA_VERSION",
    "OBSERVATION_SCHEMA",
    "match_key",
    "metric_segment",
]
