"""Metric instruments: the objects measurements are recorded into.

Four kinds, mirroring what the paper's figures actually consume:

* :class:`Counter` -- a monotonically growing scalar (messages sent,
  packets forwarded);
* :class:`Gauge` -- a last-value scalar, optionally *observable* (backed
  by a callback evaluated at export time, so publishing derived values
  costs nothing on the hot path);
* :class:`WindowedSeries` -- time-windowed accumulation under label
  tuples (the Figure 8 per-router/per-app byte series, per-port queue
  occupancy), aggregating by sum or max per window;
* :class:`Histogram` -- a streaming bucketed distribution (per-job
  message latencies) with count/sum/min/max tracked exactly.

Every instrument expands to plain-data *rows* via :meth:`Instrument.rows`;
a row is a JSON-able dict with fixed fields ``key``/``kind``/``unit``
plus a kind-specific payload (see :mod:`repro.telemetry.schema`).
Hot-path ``record``/``add`` methods are deliberately minimal: the
windowed ``record`` does exactly the two dict operations the seed's
``WindowedAppCounter.record`` did.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import defaultdict
from math import inf
from typing import Any, Callable, Iterable, Iterator


def metric_segment(name: str) -> str:
    """Fold a free-form name into one segment of a hierarchical key.

    Dots and whitespace become underscores so the name cannot span key
    segments.  The mapping is lossy -- callers that namespace metrics
    by user-supplied names (e.g. ``mpi.job.<name>``) must reject names
    that collide after folding, or their metrics would silently
    overwrite each other.
    """
    return "".join("_" if c in ". \t" else c for c in name)


class Instrument:
    """Base instrument: a named metric under a hierarchical dot key.

    ``key`` is the *family* key (``net.router.app.bytes``) used for
    enable/disable decisions and registration; labeled instruments
    expand per-label row keys from a ``template`` at export time.
    """

    kind = "abstract"

    def __init__(self, key: str, unit: str = "", doc: str = "") -> None:
        if not key or key != key.strip("."):
            raise ValueError(f"instrument key must be a dot path, got {key!r}")
        self.key = key
        self.unit = unit
        self.doc = doc

    #: Real instruments record; :class:`NullInstrument` silently drops.
    enabled = True

    def _base_row(self, key: str | None = None) -> dict[str, Any]:
        return {"key": key or self.key, "kind": self.kind, "unit": self.unit}

    def rows(self) -> Iterator[dict[str, Any]]:  # pragma: no cover - abstract
        raise NotImplementedError


class NullInstrument(Instrument):
    """Shared do-nothing stand-in for a disabled metric family.

    Every mutator is a no-op and it produces no rows, so callers may
    hold one unconditionally -- but hot paths should instead check
    ``.enabled`` once at wiring time and skip the call entirely.
    """

    kind = "null"
    enabled = False

    def add(self, *_a: Any, **_k: Any) -> None:
        pass

    def set(self, *_a: Any, **_k: Any) -> None:
        pass

    def record(self, *_a: Any, **_k: Any) -> None:
        pass

    def rows(self) -> Iterator[dict[str, Any]]:
        return iter(())


class Counter(Instrument):
    """A monotonically increasing scalar."""

    kind = "counter"

    def __init__(self, key: str, unit: str = "", doc: str = "") -> None:
        super().__init__(key, unit, doc)
        self.value: int | float = 0

    def add(self, n: int | float = 1) -> None:
        self.value += n

    def rows(self) -> Iterator[dict[str, Any]]:
        row = self._base_row()
        row["value"] = self.value
        yield row


class Gauge(Instrument):
    """A last-value scalar; observable when built with ``fn``.

    An observable gauge reads its value from ``fn()`` at export time --
    the idiom for publishing values that already live somewhere (fabric
    message totals, per-job reductions) without touching any hot path.
    """

    kind = "gauge"

    def __init__(
        self,
        key: str,
        unit: str = "",
        doc: str = "",
        fn: Callable[[], int | float] | None = None,
    ) -> None:
        super().__init__(key, unit, doc)
        self._fn = fn
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        if self._fn is not None:
            raise TypeError(f"gauge {self.key!r} is observable; it cannot be set")
        self._value = value

    @property
    def value(self) -> int | float:
        return self._fn() if self._fn is not None else self._value

    def rows(self) -> Iterator[dict[str, Any]]:
        row = self._base_row()
        row["value"] = self.value
        yield row


class WindowedSeries(Instrument):
    """Time-windowed accumulation under label tuples.

    ``record(labels, time, value)`` folds ``value`` into the window bin
    ``int(time / window)`` of the series selected by ``labels`` (any
    hashable tuple).  Aggregation is ``"sum"`` (byte totals) or
    ``"max"`` (peak queue depth per window).  The sum path costs
    exactly two dict operations.

    ``template`` maps a label tuple to the expanded row key, e.g.
    ``"net.router.{}.port.{}.queue"``; it defaults to appending the
    labels to the family key.
    """

    kind = "windowed"

    def __init__(
        self,
        key: str,
        window: float,
        unit: str = "",
        doc: str = "",
        agg: str = "sum",
        template: str | None = None,
    ) -> None:
        super().__init__(key, unit, doc)
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        if agg not in ("sum", "max"):
            raise ValueError(f"agg must be 'sum' or 'max', got {agg!r}")
        self.window = window
        self.agg = agg
        self.template = template
        self._bins: dict[Any, dict[int, float]] = defaultdict(dict)
        if agg == "max":
            self.record = self._record_max  # type: ignore[method-assign]

    def record(self, labels: Any, time: float, value: float) -> None:
        b = int(time / self.window)
        bins = self._bins[labels]
        try:
            bins[b] += value
        except KeyError:
            bins[b] = value

    def _record_max(self, labels: Any, time: float, value: float) -> None:
        b = int(time / self.window)
        bins = self._bins[labels]
        if value > bins.get(b, -inf):
            bins[b] = value

    def labels_seen(self) -> list[Any]:
        return sorted(self._bins)

    def series_of(self, labels: Any) -> dict[int, float]:
        """The sparse ``{bin: value}`` map of one labeled series."""
        return dict(self._bins.get(labels, ()))

    def row_key(self, labels: Any) -> str:
        if self.template is not None:
            return self.template.format(*labels) if isinstance(labels, tuple) \
                else self.template.format(labels)
        suffix = ".".join(str(l) for l in labels) if isinstance(labels, tuple) else str(labels)
        return f"{self.key}.{suffix}"

    def rows(self) -> Iterator[dict[str, Any]]:
        for labels in self.labels_seen():
            row = self._base_row(self.row_key(labels))
            row["window"] = self.window
            row["agg"] = self.agg
            bins = self._bins[labels]
            row["bins"] = {str(b): bins[b] for b in sorted(bins)}
            yield row


#: Default log-spaced bucket upper edges for latency histograms:
#: 4 per decade from 100 ns to 1 s (values above overflow into +inf).
LATENCY_EDGES: tuple[float, ...] = tuple(
    round(10.0 ** (-7 + d / 4.0), 12) for d in range(0, 29)
)


class Histogram(Instrument):
    """A streaming bucketed distribution with exact count/sum/min/max.

    ``record`` is one :func:`bisect.bisect_left` (C speed) plus a few
    scalar updates; buckets are fixed at construction (*inclusive*
    upper edges, ascending -- a value exactly on an edge belongs to
    that edge's bucket), values beyond the last edge land in an
    overflow bucket.
    """

    kind = "histogram"

    def __init__(
        self,
        key: str,
        edges: Iterable[float] | None = None,
        unit: str = "",
        doc: str = "",
    ) -> None:
        super().__init__(key, unit, doc)
        self.edges: list[float] = sorted(edges) if edges is not None else list(LATENCY_EDGES)
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self._counts = [0] * (len(self.edges) + 1)  # +1: overflow
        self.count = 0
        self.sum = 0.0
        self.min = inf
        self.max = -inf

    def record(self, value: float) -> None:
        self._counts[bisect_left(self.edges, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding
        it, clamped to the exactly-tracked ``[min, max]`` range."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self._counts):
            seen += c
            if seen >= rank and c:
                edge = self.edges[i] if i < len(self.edges) else self.max
                return max(min(edge, self.max), self.min)
        return self.max

    def buckets(self) -> dict[str, int]:
        """Sparse ``{upper_edge: count}`` map (overflow key ``"+inf"``)."""
        out: dict[str, int] = {}
        for i, c in enumerate(self._counts):
            if c:
                out[repr(self.edges[i]) if i < len(self.edges) else "+inf"] = c
        return out

    def rows(self) -> Iterator[dict[str, Any]]:
        row = self._base_row()
        row["count"] = self.count
        row["sum"] = self.sum
        row["min"] = self.min if self.count else 0.0
        row["max"] = self.max if self.count else 0.0
        row["mean"] = self.mean()
        row["buckets"] = self.buckets()
        yield row


#: Registered instrument kinds (docs/telemetry.md must name them all;
#: ``scripts/check_docs.py`` asserts it).
INSTRUMENT_KINDS: dict[str, type[Instrument]] = {
    cls.kind: cls for cls in (Counter, Gauge, WindowedSeries, Histogram)
}

#: Shared do-nothing instrument for disabled families.
NULL = NullInstrument("null")
