"""Generative scenarios: seed -> valid, runnable :class:`ScenarioSpec`.

The factories live in :mod:`repro.generate.builtin`; the roster is the
``generator`` registry family (:mod:`repro.registry.generators`).
:func:`generate_scenario` is the validating entry point -- every
generated mapping goes through the *real* scenario parser, so a
generator bug surfaces as a loud :class:`ScenarioError` instead of a
silently-wrong simulation, and every emitted spec round-trips through
:func:`repro.scenario.to_toml` bit-identically (property-tested in
``tests/scenario/test_generated_roundtrip.py``).
"""

from repro.generate.api import generate_mapping, generate_scenario

__all__ = ["generate_mapping", "generate_scenario"]
