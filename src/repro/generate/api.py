"""Validating entry points over the generator registry."""

from __future__ import annotations

from typing import Any, Mapping

from repro.registry.generators import build_generator
from repro.scenario import ScenarioSpec, parse_scenario


def generate_mapping(generator: "str | Mapping[str, Any]", seed: int) -> dict:
    """The raw scenario mapping one generator emits for ``seed``.

    The mapping is the plain TOML shape (tables and scalars only); use
    :func:`generate_scenario` when you want it validated and parsed.
    """
    return build_generator(generator, seed)


def generate_scenario(generator: "str | Mapping[str, Any]", seed: int) -> ScenarioSpec:
    """Generate and validate one scenario.

    Runs the emitted mapping through :func:`repro.scenario.parse_scenario`
    -- the same code path TOML files take -- so the returned spec is
    exactly what loading the serialized form would produce.
    """
    data = generate_mapping(generator, seed)
    return parse_scenario(data, name=data.get("name", f"generated-{seed}"))
