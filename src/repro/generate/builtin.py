"""Built-in scenario generators (the ``generator`` registry roster).

Every factory maps ``(seed, **params) -> dict`` deterministically: the
same seed always emits the same mapping, bit for bit -- the fuzz
harness's determinism and shrinking guarantees build on that.  All
randomness flows through one :class:`~repro.pdes.rng.SplitMix` stream
seeded from the scenario seed; no wall-clock, no global state.

Generated scenarios target the default mini dragonfly fabric (144
nodes, 72 routers in 9 all-to-all groups) with ``adp`` routing, so
down-kind fault entries always pass the routing capability check and
any same-group router pair is a valid link.
"""

from __future__ import annotations

import math

from repro.pdes.rng import SplitMix
from repro.workloads.catalog import app_catalog

#: Mini dragonfly1d group shape (the generators' fixed target fabric).
_N_GROUPS = 9
_ROUTERS_PER_GROUP = 8

#: Catalog apps with a finite iteration count (``ur`` runs endlessly and
#: would dominate every mix, so background load is modeled with
#: [[traffic]] injectors instead).
_FINITE_APPS = ("alexnet", "nn", "milc", "lammps", "cosmoflow", "nekbone")

_MSG_SIZES = (1024, 4096, 8192, 16384, 65536)

#: Fault kinds the random-mix generator sprinkles (mirrors
#: :data:`repro.scenario.spec.FAULT_KINDS`).
_FAULT_KINDS = ("link-degrade", "link-down", "router-down", "storage-slow")


def _same_group_link(rng: SplitMix) -> tuple[int, int]:
    """A random distinct same-group router pair (always linked: groups
    are all-to-all in dragonfly1d)."""
    g = rng.randint(_N_GROUPS)
    a = rng.randint(_ROUTERS_PER_GROUP)
    b = (a + 1 + rng.randint(_ROUTERS_PER_GROUP - 1)) % _ROUTERS_PER_GROUP
    return g * _ROUTERS_PER_GROUP + a, g * _ROUTERS_PER_GROUP + b


def _draw_jobs(rng: SplitMix, n: int, horizon: float) -> list[dict]:
    """``n`` catalog jobs; job 0 arrives at t=0, the rest stagger in."""
    catalog = app_catalog("mini")
    out: list[dict] = []
    arrival = 0.0
    for i in range(n):
        app = _FINITE_APPS[rng.randint(len(_FINITE_APPS))]
        entry: dict = {"app": app, "name": f"{app}{i}"}
        if arrival > 0.0:
            entry["arrival"] = arrival
        assert catalog[app].nranks >= 1
        out.append(entry)
        arrival += 0.0002 + rng.random() * horizon / 8
    return out


def _uniform_injector(rng: SplitMix, i: int, horizon: float) -> dict:
    return {
        "name": f"bg{i}",
        "pattern": "uniform",
        "nranks": (4, 8, 16)[rng.randint(3)],
        "iters": 20 + rng.randint(80),
        "interval_s": 2e-5 * (1.0 + rng.random()),
        "msg_bytes": _MSG_SIZES[rng.randint(4)],
        "arrival": rng.random() * horizon / 4,
    }


#: Non-dragonfly fabrics ``random-mix`` can target.  Each entry:
#: (mini-preset ``[topology]`` table, fabric-valid routing, placement).
#: Fat-tree rejects the group-aware rg/rr placements (jobs scatter with
#: rn); the torus registers only deterministic ``dor`` routing, so
#: neither fabric can satisfy the down-fault capability check -- fault
#: draws on them coerce to ``storage-slow`` (see below).
_FABRICS: dict[str, tuple[dict, str, str]] = {
    "fattree": ({"type": "fattree"}, "adaptive", "rn"),
    "torus": ({"type": "torus"}, "dor", "rr"),
}


def random_mix(seed: int, *, jobs: int = 3, traffic: int = 1,
               faults: int = 0, horizon: float = 0.006,
               fabric: str = "dragonfly") -> dict:
    """Random catalog job mix + background injectors + optional faults.

    ``fabric`` retargets the mix at a non-dragonfly topology
    (``"fattree"`` / ``"torus"``, mini presets) by emitting an explicit
    ``[topology]`` table with fabric-valid routing/placement; the
    default ``"dragonfly"`` output is byte-identical to what this
    generator always emitted (no topology table, ``adp`` routing), so
    existing golden seeds keep their meaning.
    """
    if fabric != "dragonfly" and fabric not in _FABRICS:
        raise ValueError(
            f"unknown fabric {fabric!r}; expected 'dragonfly' or one of "
            f"{sorted(_FABRICS)}")
    rng = SplitMix(seed, 0x6D69)  # "mi"
    data: dict = {
        "name": f"random-mix-{seed}",
        "seed": seed,
        "horizon": horizon,
        "routing": "adp",
        "jobs": _draw_jobs(rng, jobs, horizon),
    }
    if fabric != "dragonfly":
        topology, routing, placement = _FABRICS[fabric]
        data["name"] = f"random-mix-{fabric}-{seed}"
        data["routing"] = routing
        data["placement"] = placement
        data["topology"] = dict(topology)
    if traffic:
        data["traffic"] = [_uniform_injector(rng, i, horizon)
                           for i in range(traffic)]
    if faults:
        entries = []
        needs_storage = False
        for _ in range(faults):
            # Down-kind faults need adaptive re-route *and* dragonfly
            # router/link numbering; on other fabrics every draw is a
            # storage-slow fault (fabric-agnostic by construction).
            kind = (_FAULT_KINDS[rng.randint(len(_FAULT_KINDS))]
                    if fabric == "dragonfly" else "storage-slow")
            start = rng.random() * horizon / 2
            entry: dict = {
                "kind": kind,
                "start": start,
                "duration": horizon / 10 + rng.random() * horizon / 4,
            }
            if kind in ("link-degrade", "link-down"):
                entry["router"], entry["router_b"] = _same_group_link(rng)
            elif kind == "router-down":
                entry["router"] = rng.randint(_N_GROUPS * _ROUTERS_PER_GROUP)
            if kind == "link-degrade":
                entry["factor"] = 0.05 + 0.3 * rng.random()
            elif kind == "storage-slow":
                entry["factor"] = 2.0 + 8.0 * rng.random()
                needs_storage = True
            entries.append(entry)
        data["faults"] = entries
        if needs_storage:
            data["storage"] = {"servers": 1 + rng.randint(2)}
    return data


def diurnal(seed: int, *, arrivals: int = 2000, period: float = 0.02,
            horizon: float = 0.05) -> dict:
    """One anchor job under a diurnal burst-arrival process.

    Arrival times follow an inhomogeneous Poisson profile
    ``rate(t) = 0.15 + 0.85 * sin^2(pi t / period)`` via rejection
    sampling -- exactly ``arrivals`` entries, denser near the diurnal
    peaks.  With the default parameters this is a thousands-of-arrivals
    spec meant for parse/round-trip property tests, not for running.
    """
    rng = SplitMix(seed, 0x6469)  # "di"
    entries = []
    for i in range(arrivals):
        while True:
            t = rng.random() * horizon
            if rng.random() < 0.15 + 0.85 * math.sin(math.pi * t / period) ** 2:
                break
        entries.append({
            "name": f"burst{i}",
            "pattern": "uniform",
            "nranks": 4,
            "iters": 2 + rng.randint(6),
            "interval_s": 1e-5,
            "msg_bytes": 4096,
            "arrival": t,
        })
    return {
        "name": f"diurnal-{seed}",
        "seed": seed,
        "horizon": horizon,
        "routing": "adp",
        "jobs": [{"app": "nn", "name": "anchor"}],
        "traffic": entries,
    }


def hotspot_blend(seed: int, *, injectors: int = 3, jobs: int = 2,
                  horizon: float = 0.006) -> dict:
    """Hotspot + uniform injector blend alongside catalog jobs.

    Injector 0 is always uniform background; the rest are hotspot
    injectors with randomized hot-rank counts, the traffic shape the
    paper's interference study leans on hardest.
    """
    rng = SplitMix(seed, 0x6873)  # "hs"
    entries = [_uniform_injector(rng, 0, horizon)]
    for i in range(1, injectors):
        nranks = (8, 16)[rng.randint(2)]
        entries.append({
            "name": f"hot{i}",
            "pattern": "hotspot",
            "nranks": nranks,
            "iters": 30 + rng.randint(100),
            "interval_s": 2e-5 * (1.0 + rng.random()),
            "msg_bytes": _MSG_SIZES[1 + rng.randint(4)],
            "hot_ranks": 1 + rng.randint(3),
            "arrival": rng.random() * horizon / 4,
        })
    return {
        "name": f"hotspot-blend-{seed}",
        "seed": seed,
        "horizon": horizon,
        "routing": "adp",
        "jobs": _draw_jobs(rng, jobs, horizon),
        "traffic": entries,
    }
