"""Generator registry: named scenario generators as the sixth family.

A *generator* turns one integer seed (plus typed parameters) into a
complete, valid scenario mapping -- the same plain ``dict`` shape that
``load_scenario`` reads from TOML.  Generators power the property-based
fuzz harness (``union-sim fuzz``) and the ``examples/scenarios``
regeneration flow: instead of hand-writing hundreds of job mixes, a
seed sweep over a generator explores the configuration space while
every emitted spec still passes the real parser and round-trips
through :func:`repro.scenario.to_toml` bit-identically.

``random-mix``
    Random job mixes from the workload catalog with staggered arrivals,
    background injectors and (optionally) sprinkled fault entries.
``diurnal``
    One anchor job under a diurnal (thinned inhomogeneous Poisson)
    arrival process of thousands of small traffic bursts.
``hotspot-blend``
    A blend of hotspot and uniform injectors with randomized hot-rank
    sets alongside a couple of catalog jobs.

Like the policy family, factories live behind thin import thunks
(:mod:`repro.generate.builtin`) so this module stays importable from
``repro.registry.__init__`` without dragging in the scenario parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.registry.core import ComponentSpec, Param, Registry, _err


@dataclass(frozen=True)
class GeneratorSpec(ComponentSpec):
    """One registered scenario generator.

    ``factory(seed, **params) -> dict`` returns a plain scenario
    mapping (the TOML shape); callers validate it through the real
    parser -- a generator's contract is that every seed yields a
    mapping :func:`repro.scenario.parse_scenario` accepts.
    """

    factory: "Callable[..., dict] | None" = None

    def build(self, seed: int, params: "Mapping[str, Any]") -> dict:
        assert self.factory is not None
        return self.factory(seed, **params)


generator_registry = Registry("generator")


def register_generator(spec: GeneratorSpec, aliases: tuple[str, ...] = (),
                       replace: bool = False) -> GeneratorSpec:
    """Add a scenario generator to the roster (``docs/scenarios.md``)."""
    if spec.factory is None:
        raise ValueError(f"generator {spec.name!r} needs a factory")
    generator_registry.register(spec, aliases=aliases, replace=replace)
    return spec


def build_generator(generator: "str | Mapping[str, Any]", seed: int,
                    path: str = "generator") -> dict:
    """Resolve a generator argument and emit one scenario mapping.

    Accepts a registry name (``"random-mix"``) or a canonical table
    (``{"type": "random-mix", "jobs": 6}``).  Returns the raw mapping;
    :func:`repro.generate.generate_scenario` is the validating wrapper.
    """
    if isinstance(generator, str):
        table: dict[str, Any] = {"type": generator}
    else:
        table = dict(generator)
    name = table.pop("type", None)
    if name is None:
        raise _err(path, "missing 'type' key naming the generator")
    spec = generator_registry.get(name, path=f"{path}.type")
    assert isinstance(spec, GeneratorSpec)
    params = spec.resolve_params(table, path, kind="generator")
    return spec.build(seed, params)


def available_generators() -> tuple[str, ...]:
    return generator_registry.names()


# -- built-in roster ---------------------------------------------------------
# Thin thunks defer the import of repro.generate.builtin (which imports
# the workload catalog) to first use.

def _random_mix(seed: int, **params) -> dict:
    from repro.generate.builtin import random_mix

    return random_mix(seed, **params)


def _diurnal(seed: int, **params) -> dict:
    from repro.generate.builtin import diurnal

    return diurnal(seed, **params)


def _hotspot_blend(seed: int, **params) -> dict:
    from repro.generate.builtin import hotspot_blend

    return hotspot_blend(seed, **params)


register_generator(GeneratorSpec(
    name="random-mix",
    summary="random catalog job mixes with staggered arrivals, background "
            "injectors and optional sprinkled faults",
    params=(
        Param("jobs", "int", "catalog jobs to draw", default=3, minimum=1),
        Param("traffic", "int", "background injectors to draw",
              default=1, minimum=0),
        Param("faults", "int", "fault entries to sprinkle",
              default=0, minimum=0),
        Param("horizon", "float", "simulation horizon (s)",
              default=0.006, minimum=0),
        Param("fabric", "str", "target topology family",
              default="dragonfly",
              choices=("dragonfly", "fattree", "torus")),
    ),
    factory=_random_mix,
), aliases=("mix",))

register_generator(GeneratorSpec(
    name="diurnal",
    summary="one anchor job under a diurnal (thinned Poisson) arrival "
            "process of small traffic bursts",
    params=(
        Param("arrivals", "int", "traffic arrivals to sample",
              default=2000, minimum=1),
        Param("period", "float", "diurnal cycle length (s)",
              default=0.02, minimum=0),
        Param("horizon", "float", "simulation horizon (s)",
              default=0.05, minimum=0),
    ),
    factory=_diurnal,
), aliases=("poisson",))

register_generator(GeneratorSpec(
    name="hotspot-blend",
    summary="hotspot + uniform injector blends with randomized hot-rank "
            "sets alongside catalog jobs",
    params=(
        Param("injectors", "int", "traffic injectors to draw",
              default=3, minimum=1),
        Param("jobs", "int", "catalog jobs to draw", default=2, minimum=1),
        Param("horizon", "float", "simulation horizon (s)",
              default=0.006, minimum=0),
    ),
    factory=_hotspot_blend,
))
