"""Routing registry: per-topology routing capability and resolution.

Routing policies are topology-specific (UGAL needs dragonfly group
structure, D-mod-k needs a fat-tree's up/down tiers), so the registry
is keyed by *(topology, routing name)*: each :class:`TopologySpec`
lists the routing names that can run on it, and this module holds the
concrete factory for each pair.  One routing name may map to different
implementations on different fabrics (``min`` is dragonfly
:class:`~repro.network.routing.MinimalRouting` but a diameter-2 direct
route on a slim fly).

``resolve_routing(name, topo)`` returns a factory with the
``factory(topo, config, probe, stream_id)`` signature that
:class:`~repro.network.fabric.NetworkFabric` accepts, or raises the
canonical capability error::

    routing 'adp' is not available on topology 'torus'; choose from ['dor']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.network.fattree import FatTreeNCARouting
from repro.network.routing import AdaptiveRouting, MinimalRouting
from repro.network.slimfly import SlimFlyRouting
from repro.network.torus import TorusDORRouting
from repro.registry.core import ComponentSpec, RegistryError, _err
from repro.registry.topologies import (
    TopologySpec,
    spec_for_instance,
    topology_label,
    topology_registry,
)

#: Factory signature NetworkFabric consumes.
RoutingFactory = Callable[..., Any]


@dataclass(frozen=True)
class RoutingSpec(ComponentSpec):
    """One routing policy on one topology family."""

    factory: RoutingFactory | None = None
    #: Whether the policy can steer around a failed link/router: its
    #: path selection is congestion- or randomness-driven, so re-drawing
    #: yields alternative candidates.  Fault injection (``[[faults]]``
    #: with a ``link-down``/``router-down`` kind) requires every
    #: effective routing to be adaptive; deterministic single-path
    #: policies (``min``, ``dor``, ``dmodk``) would hit the dead element
    #: forever, so the scenario parser rejects that combination up
    #: front.
    adaptive: bool = False


#: (topology name, routing name) -> spec.
_ROUTINGS: dict[tuple[str, str], RoutingSpec] = {}


def register_routing(topology: str, spec: RoutingSpec, replace: bool = False) -> RoutingSpec:
    """Attach a routing policy to a registered topology.

    The topology's ``routings`` tuple is its declared capability list;
    a registered factory outside that list would be unreachable, so the
    pair must agree.
    """
    topo_spec = topology_registry.get(topology)
    assert isinstance(topo_spec, TopologySpec)
    if spec.name not in topo_spec.routings and not replace:
        raise ValueError(
            f"routing {spec.name!r} is not declared in topology "
            f"{topo_spec.name!r}'s capability list {topo_spec.routings}"
        )
    key = (topo_spec.name, spec.name.lower())
    if key in _ROUTINGS and not replace:
        raise ValueError(f"routing {spec.name!r} on {topo_spec.name!r} is already registered")
    _ROUTINGS[key] = spec
    return spec


def available_routings(topology: str | Any) -> tuple[str, ...]:
    """Routing names runnable on ``topology`` (name, alias or instance)."""
    if isinstance(topology, str):
        spec = topology_registry.get(topology)
    else:
        spec = spec_for_instance(topology)
        if spec is None:
            return ()
    assert isinstance(spec, TopologySpec)
    return spec.routings


def all_routing_names() -> tuple[str, ...]:
    """Every routing name on any topology, registration-ordered, unique."""
    seen: dict[str, None] = {}
    for _, name in _ROUTINGS:
        seen.setdefault(name)
    return tuple(seen)


def _lookup(topo_spec: TopologySpec, name: str, path: str = "") -> RoutingSpec:
    """(topology, routing) lookup with the canonical capability errors."""
    key = name.lower() if isinstance(name, str) else name
    hit = _ROUTINGS.get((topo_spec.name, key))
    if hit is None:
        avail = list(topo_spec.routings)
        if any(r == key for _, r in _ROUTINGS):
            raise _err(path, f"routing {name!r} is not available on topology "
                             f"{topo_spec.name!r}; choose from {avail}")
        raise _err(path, f"{name!r} is not one of {avail}")
    return hit


def routing_spec(topology: str, name: str) -> RoutingSpec:
    """The spec of one routing on one topology (name or alias)."""
    topo_spec = topology_registry.get(topology)
    assert isinstance(topo_spec, TopologySpec)
    return _lookup(topo_spec, name)


def resolve_routing(name: str, topo: Any, path: str = "") -> RoutingFactory:
    """Resolve a routing name against a live topology instance.

    Unknown names and topology/routing capability mismatches raise
    :class:`RegistryError` with the full choice list.
    """
    topo_spec = spec_for_instance(topo)
    if topo_spec is None:
        raise _err(path, f"cannot resolve routing {name!r}: topology "
                         f"{topology_label(topo)!r} is not registered; pass a "
                         "routing factory instead of a name")
    hit = _lookup(topo_spec, name, path)
    assert hit.factory is not None
    return hit.factory


# -- built-in roster ---------------------------------------------------------

def _fattree_factory(mode: str) -> RoutingFactory:
    def factory(topo, config, probe, stream_id=0):
        return FatTreeNCARouting(topo, config, probe, stream_id, mode=mode)
    return factory


def _slimfly_factory(mode: str) -> RoutingFactory:
    def factory(topo, config, probe, stream_id=0):
        return SlimFlyRouting(topo, config, probe, stream_id, mode=mode)
    return factory


for _df in ("dragonfly1d", "dragonfly2d"):
    register_routing(_df, RoutingSpec(
        "min", "minimal path, random tie-break", factory=MinimalRouting))
    register_routing(_df, RoutingSpec(
        "adp", "UGAL-L adaptive: minimal unless a Valiant detour is less congested",
        factory=AdaptiveRouting, adaptive=True))

register_routing("fattree", RoutingSpec(
    "dmodk", "up to the nearest common ancestor, D-mod-k upward choice",
    factory=_fattree_factory("dmodk")))
register_routing("fattree", RoutingSpec(
    "random", "NCA routing with uniform-random upward choice",
    factory=_fattree_factory("random")))
register_routing("fattree", RoutingSpec(
    "adaptive", "NCA routing picking the shallowest upward queue",
    factory=_fattree_factory("adaptive"), adaptive=True))

register_routing("torus", RoutingSpec(
    "dor", "dimension-order routing, shortest-direction wrap",
    factory=TorusDORRouting))

register_routing("slimfly", RoutingSpec(
    "min", "direct or one-intermediate (diameter-2) minimal route",
    factory=_slimfly_factory("min")))
register_routing("slimfly", RoutingSpec(
    "adaptive", "UGAL-style choice between minimal and Valiant detour",
    factory=_slimfly_factory("adaptive"), adaptive=True))
