"""Policy registry: session control policies as named, parameterized specs.

The session lifecycle (:mod:`repro.union.session`) exposes its decision
points -- admission, placement, routing selection -- as hooks on a
:class:`~repro.union.policy.ControlPolicy`.  This registry makes those
policies a component family like topologies, routings, placements and
engines: the scenario ``[env]`` table, ``union-sim env --policy`` and
:meth:`WorkloadManager.session` all resolve through one roster:

``scripted``
    The baseline: replay the configured placement/routing draws
    verbatim (bit-identical to the pre-session monolithic run).
``load-aware``
    Place arrivals on the least-loaded routers, read live from the
    session's observation.
``admission``
    Defer launches while fewer than ``min_free`` nodes are free.

Unlike engines, policy factories need no topology at build time -- the
session binds the live state later via ``policy.bind(session)`` -- so
:func:`build_policy` instantiates from the table alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Mapping

from repro.registry.core import ComponentSpec, Param, Registry, _err

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.union.__init__ pulls in the
    # manager, which imports repro.registry -- a module-level import
    # here would close that cycle.
    from repro.union.policy import ControlPolicy


@dataclass(frozen=True)
class PolicySpec(ComponentSpec):
    """One registered control policy.

    ``factory(**params) -> ControlPolicy`` builds a fresh, unbound
    policy instance; ``hooks`` names the decision points the policy
    actually implements (documentation surface for rosters and
    ``docs/env.md``).
    """

    factory: "Callable[..., ControlPolicy] | None" = None
    hooks: tuple[str, ...] = ()

    def build(self, params: "Mapping[str, Any]") -> "ControlPolicy":
        assert self.factory is not None
        return self.factory(**params)


policy_registry = Registry("policy")


def register_policy(spec: PolicySpec, aliases: tuple[str, ...] = (),
                    replace: bool = False) -> PolicySpec:
    """Add a control policy to the roster (``docs/env.md``)."""
    if spec.factory is None:
        raise ValueError(f"policy {spec.name!r} needs a factory")
    policy_registry.register(spec, aliases=aliases, replace=replace)
    return spec


def build_policy(policy: "str | Mapping[str, Any] | ControlPolicy | None",
                 path: str = "policy") -> "ControlPolicy":
    """Resolve a policy argument to a ready :class:`ControlPolicy`.

    Accepts a registry name (``"load-aware"``), a canonical table
    (``{"type": "admission", "min_free": 8}``), a ready instance
    (passed through untouched) or ``None`` for the scripted baseline.
    Unknown names and parameters fail with the registry's key-path
    error.
    """
    from repro.union.policy import ControlPolicy

    if policy is None:
        policy = "scripted"
    if isinstance(policy, ControlPolicy):
        return policy
    if isinstance(policy, str):
        table: dict[str, Any] = {"type": policy}
    else:
        table = dict(policy)
    name = table.pop("type", None)
    if name is None:
        raise _err(path, "missing 'type' key naming the policy")
    spec = policy_registry.get(name, path=f"{path}.type")
    assert isinstance(spec, PolicySpec)
    params = spec.resolve_params(table, path, kind="policy")
    return spec.build(params)


def available_policies() -> tuple[str, ...]:
    return policy_registry.names()


# -- built-in roster ---------------------------------------------------------
# Thin lambdas defer the class imports to first use, keeping this module
# importable from repro.registry.__init__ without touching repro.union.

def _scripted(**params) -> "ControlPolicy":
    from repro.union.policy import ScriptedPolicy

    return ScriptedPolicy(**params)


def _load_aware(**params) -> "ControlPolicy":
    from repro.union.policy import LoadAwarePolicy

    return LoadAwarePolicy(**params)


def _admission(**params) -> "ControlPolicy":
    from repro.union.policy import AdmissionPolicy

    return AdmissionPolicy(**params)


register_policy(PolicySpec(
    name="scripted",
    summary="replay the configured placement/routing draws verbatim "
            "(the baseline; bit-identical to a policy-less run)",
    factory=_scripted,
), aliases=("baseline",))

register_policy(PolicySpec(
    name="load-aware",
    summary="place arrivals on the least-loaded routers, read live from "
            "the session observation",
    factory=_load_aware,
    hooks=("place",),
), aliases=("la",))

register_policy(PolicySpec(
    name="admission",
    summary="defer launches while fewer than min_free nodes are free",
    params=(
        Param("min_free", "int",
              "free nodes that must remain after the launch; arrivals "
              "that would dip below are deferred", default=0, minimum=0),
    ),
    factory=_admission,
    hooks=("admit",),
))
