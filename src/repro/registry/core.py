"""Generic component registry: named, self-describing factories.

Every pluggable piece of the simulator -- topologies, routing policies,
placement policies -- is described by a :class:`ComponentSpec`: a name,
a one-line summary, and a tuple of typed :class:`Param` declarations.
A :class:`Registry` maps names (plus optional aliases) to specs and
produces the same key-path error style as the scenario parser
(``topology.k: expected an integer, got 'wide'``), because registry
lookups are driven by hand-written spec files and CLI flags -- error
messages are the user interface.

Concrete component kinds live in :mod:`repro.registry.topologies`,
:mod:`repro.registry.routings` and :mod:`repro.registry.placements`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping


class RegistryError(ValueError):
    """A registry lookup or parameter resolution failed; the message
    names the offending key path and lists the valid alternatives."""


def _err(path: str, problem: str) -> RegistryError:
    where = f"{path}: " if path else ""
    return RegistryError(f"{where}{problem}")


#: Sentinel for parameters without a default (rarely used: most
#: component parameters take their defaults from a scale preset).
REQUIRED = object()


@dataclass(frozen=True)
class Param:
    """One typed parameter of a component.

    ``kind`` is one of ``"int"``, ``"float"``, ``"str"``, ``"bool"`` or
    ``"int_list"`` (a TOML/JSON array of integers, e.g. torus ``dims``).
    """

    name: str
    kind: str
    doc: str = ""
    default: Any = REQUIRED
    minimum: int | float | None = None
    choices: tuple[Any, ...] | None = None

    _KINDS = ("int", "float", "str", "bool", "int_list")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"param {self.name!r}: unknown kind {self.kind!r}")

    @property
    def required(self) -> bool:
        return self.default is REQUIRED

    def describe(self) -> str:
        """Human-readable one-liner for help text and ``topologies`` output."""
        out = f"{self.name}: {self.kind}"
        if not self.required:
            out += f" = {self.default!r}"
        if self.doc:
            out += f"  ({self.doc})"
        return out

    def validate(self, value: Any, path: str) -> Any:
        """Coerce/validate one value; raises :class:`RegistryError`."""
        where = f"{path}.{self.name}" if path else self.name
        if self.kind == "int":
            if isinstance(value, bool) or not isinstance(value, int):
                raise _err(where, f"expected an integer, got {value!r}")
        elif self.kind == "float":
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise _err(where, f"expected a number, got {value!r}")
            value = float(value)
        elif self.kind == "str":
            if not isinstance(value, str):
                raise _err(where, f"expected a string, got {value!r}")
        elif self.kind == "bool":
            if not isinstance(value, bool):
                raise _err(where, f"expected a boolean, got {value!r}")
        else:  # int_list
            if not isinstance(value, (list, tuple)) or not value or any(
                isinstance(v, bool) or not isinstance(v, int) for v in value
            ):
                raise _err(where, f"expected a non-empty array of integers, got {value!r}")
            value = tuple(int(v) for v in value)
        if self.minimum is not None:
            low = min(value) if self.kind == "int_list" else value
            if low < self.minimum:
                raise _err(where, f"must be >= {self.minimum}, got {value!r}")
        if self.choices is not None and value not in self.choices:
            raise _err(where, f"{value!r} is not one of {list(self.choices)}")
        return value


@dataclass(frozen=True)
class ComponentSpec:
    """Base class for registered components: name, summary, typed params."""

    name: str
    summary: str
    params: tuple[Param, ...] = ()

    def param(self, name: str) -> Param | None:
        for p in self.params:
            if p.name == name:
                return p
        return None

    def param_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def validate_params(
        self, data: Mapping[str, Any], path: str = "", kind: str = "component"
    ) -> dict[str, Any]:
        """Validate explicitly supplied parameters (no default filling).

        Used where presets supply the baseline values and ``data`` only
        carries overrides; :meth:`resolve_params` additionally fills in
        defaults and enforces required parameters.
        """
        out: dict[str, Any] = {}
        for key, value in data.items():
            p = self.param(key)
            if p is None:
                expected = ", ".join(self.param_names()) or "(none)"
                raise _err(
                    f"{path}.{key}" if path else key,
                    f"unknown parameter {key!r} for {kind} {self.name!r}; "
                    f"expected one of: {expected}",
                )
            out[key] = p.validate(value, path)
        return out

    def resolve_params(
        self, data: Mapping[str, Any], path: str = "", kind: str = "component"
    ) -> dict[str, Any]:
        """Validate ``data`` and fill defaults; required params must appear."""
        out = self.validate_params(data, path, kind)
        for p in self.params:
            if p.name in out:
                continue
            if p.required:
                raise _err(path, f"missing required parameter {p.name!r} "
                                 f"for {kind} {self.name!r}")
            out[p.name] = p.default
        return out


@dataclass
class Registry:
    """Ordered name -> spec mapping with alias support.

    Iteration and :meth:`names` preserve registration order, which the
    harness relies on for stable sweep/report ordering.
    """

    kind: str
    _specs: dict[str, ComponentSpec] = field(default_factory=dict)
    _aliases: dict[str, str] = field(default_factory=dict)

    def register(self, spec: ComponentSpec, aliases: tuple[str, ...] = (),
                 replace: bool = False) -> ComponentSpec:
        key = spec.name.lower()
        if not replace and (key in self._specs or key in self._aliases):
            raise ValueError(
                f"{self.kind} {spec.name!r} is already registered; "
                "pass replace=True to overwrite"
            )
        self._specs[key] = spec
        for alias in aliases:
            self._aliases[alias.lower()] = key
        return spec

    def canonical(self, name: str) -> str:
        key = name.lower()
        return self._aliases.get(key, key)

    def get(self, name: str, path: str = "") -> ComponentSpec:
        if not isinstance(name, str):
            raise _err(path, f"expected a {self.kind} name (string), got {name!r}")
        key = self.canonical(name)
        spec = self._specs.get(key)
        if spec is None:
            raise _err(path, f"unknown {self.kind} {name!r}; "
                             f"available: {list(self._specs)}")
        return spec

    def names(self) -> tuple[str, ...]:
        return tuple(self._specs)

    def aliases(self) -> dict[str, str]:
        return dict(self._aliases)

    def __contains__(self, name: str) -> bool:
        return self.canonical(name) in self._specs

    def __iter__(self):
        return iter(self._specs.values())
