"""Engine registry: PDES execution engines as named, parameterized specs.

The paper runs its simulations on CODES/ROSS in conservative (YAWNS)
mode; this registry makes the execution engine a pluggable component
like topologies and routings, so a scenario's ``[engine]`` table, the
CLI's ``--engine``/``--partitions`` flags and
:class:`~repro.union.manager.WorkloadManager`'s ``engine`` parameter
all resolve through one roster:

``sequential``
    The single-queue deterministic scheduler (the default).
``conservative``
    Partitioned YAWNS execution: LPs are split topology-aware (whole
    dragonfly groups / fat-tree pods / torus slabs per partition) and
    the lookahead derives from the minimum cross-partition link latency
    unless ``lookahead`` pins a tighter value explicitly.  Commits the
    identical event sequence as ``sequential`` (see ``docs/engines.md``).
``mp-conservative``
    The same YAWNS execution distributed for real: one worker process
    per partition, cross-partition events exchanged at window
    boundaries, results bit-identical to ``sequential``.  Models that
    cannot be distributed fall back to single-process execution with
    the reason recorded (``docs/engines.md``).
``timewarp``
    Optimistic Time Warp execution: speculative event handling with
    state rollback and periodic GVT commitment.
``accel-sequential`` / ``accel-conservative``
    The sequential / YAWNS schedulers with the event loop in the
    compiled :mod:`repro.accel` kernel.  ``backend: compiled`` (the
    default) uses the C kernel when it can be built and falls back to
    the bit-identical pure-Python engine otherwise, recording the
    reason; ``backend: python`` forces the fallback.

Engine factories need the live topology (and link config) to build
their partition plan, so :func:`build_engine` takes both -- unlike
topology specs, an engine table cannot be instantiated standalone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.network.config import NetworkConfig
from repro.pdes.engine import Engine
from repro.pdes.sequential import SequentialEngine
from repro.registry.core import ComponentSpec, Param, Registry, _err


@dataclass(frozen=True)
class EngineSpec(ComponentSpec):
    """One registered PDES engine.

    ``factory(topo, config, **params) -> Engine`` builds a fresh engine
    for one simulation; engines hold per-run LP state, so they are never
    shared between runs.
    """

    factory: Callable[..., Engine] | None = None
    partitioned: bool = False

    def build(self, topo: Any, config: NetworkConfig | None,
              params: Mapping[str, Any]) -> Engine:
        assert self.factory is not None
        return self.factory(topo, config, **params)


engine_registry = Registry("engine")


def register_engine(spec: EngineSpec, aliases: tuple[str, ...] = (),
                    replace: bool = False) -> EngineSpec:
    """Add an execution engine to the roster (``docs/engines.md``)."""
    if spec.factory is None:
        raise ValueError(f"engine {spec.name!r} needs a factory")
    engine_registry.register(spec, aliases=aliases, replace=replace)
    return spec


def build_engine(table: Mapping[str, Any], topo: Any,
                 config: NetworkConfig | None = None,
                 path: str = "engine") -> Engine:
    """Instantiate an engine from a canonical ``{"type": ..., ...}`` table.

    ``topo``/``config`` are the fabric the engine will execute;
    partitioned engines derive their plan and lookahead from them.
    Structural mismatches (more partitions than dragonfly groups, an
    explicit lookahead the link latencies cannot justify) surface as
    :class:`~repro.registry.core.RegistryError` with the key path.
    """
    from repro.parallel import PartitionError

    table = dict(table)
    name = table.pop("type", None)
    if name is None:
        raise _err(path, "missing 'type' key naming the engine")
    spec = engine_registry.get(name, path=f"{path}.type")
    assert isinstance(spec, EngineSpec)
    params = spec.resolve_params(table, path, kind="engine")
    try:
        return spec.build(topo, config, params)
    except PartitionError as exc:
        raise _err(path, str(exc)) from None


def available_engines() -> tuple[str, ...]:
    return engine_registry.names()


# -- built-in roster ---------------------------------------------------------

def _sequential_factory(topo: Any, config: NetworkConfig | None) -> Engine:
    return SequentialEngine()


def _conservative_factory(topo: Any, config: NetworkConfig | None,
                          partitions: int, lookahead: float | None) -> Engine:
    from repro.parallel import conservative_engine

    return conservative_engine(topo, config, partitions=partitions,
                               lookahead=lookahead)


def _mp_conservative_factory(topo: Any, config: NetworkConfig | None,
                             partitions: int, lookahead: float | None,
                             backend: str) -> Engine:
    from repro.parallel.mp import mp_conservative_engine

    return mp_conservative_engine(topo, config, partitions=partitions,
                                  lookahead=lookahead, backend=backend)


def _timewarp_factory(topo: Any, config: NetworkConfig | None,
                      gvt_interval: int) -> Engine:
    from repro.pdes.timewarp import TimeWarpEngine

    return TimeWarpEngine(gvt_interval=gvt_interval)


def _accel_sequential_factory(topo: Any, config: NetworkConfig | None,
                              backend: str) -> Engine:
    from repro.accel import accel_sequential_engine

    return accel_sequential_engine(backend=backend)


def _accel_conservative_factory(topo: Any, config: NetworkConfig | None,
                                partitions: int, lookahead: float | None,
                                backend: str) -> Engine:
    from repro.accel import accel_conservative_engine

    return accel_conservative_engine(topo, config, partitions=partitions,
                                     lookahead=lookahead, backend=backend)


_BACKEND_DOC = ("event-loop backend: 'compiled' (the C kernel, falling "
                "back cleanly with the reason recorded when it cannot be "
                "built) or 'python' (force the pure-Python fallback)")


register_engine(EngineSpec(
    name="sequential",
    summary="deterministic single-queue event scheduler (the default)",
    factory=_sequential_factory,
), aliases=("seq",))

register_engine(EngineSpec(
    name="conservative",
    summary="partitioned YAWNS execution, lookahead from the minimum "
            "cross-partition link latency",
    params=(
        Param("partitions", "int", "LP partitions (grouped topology-aware)",
              default=4, minimum=1),
        Param("lookahead", "float",
              "explicit lookahead override in seconds (default: derived "
              "from the partition plan's cross-partition links)",
              default=None),
    ),
    factory=_conservative_factory,
    partitioned=True,
), aliases=("yawns",))

register_engine(EngineSpec(
    name="mp-conservative",
    summary="YAWNS execution distributed over one worker process per "
            "partition (clean single-process fallback, see docs/engines.md)",
    params=(
        Param("partitions", "int", "LP partitions (grouped topology-aware), "
              "one worker process each",
              default=4, minimum=1),
        Param("lookahead", "float",
              "explicit lookahead override in seconds (default: derived "
              "from the partition plan's cross-partition links)",
              default=None),
        Param("backend", "str",
              "cross-process transport: 'mp' (spawned processes over "
              "pipes), 'inline' (in-process protocol emulation) or 'mpi' "
              "(mpi4py ranks; requires mpi4py)",
              default="mp", choices=("mp", "inline", "mpi")),
    ),
    factory=_mp_conservative_factory,
    partitioned=True,
), aliases=("mp",))

register_engine(EngineSpec(
    name="timewarp",
    summary="optimistic Time Warp execution with rollback and periodic "
            "GVT commitment",
    params=(
        Param("gvt_interval", "int",
              "events executed between GVT (global virtual time) "
              "computations",
              default=64, minimum=1),
    ),
    factory=_timewarp_factory,
), aliases=("tw",))

register_engine(EngineSpec(
    name="accel-sequential",
    summary="sequential scheduling with the event loop in the compiled "
            "repro.accel kernel (bit-identical pure-Python fallback)",
    params=(
        Param("backend", "str", _BACKEND_DOC,
              default="compiled", choices=("compiled", "python")),
    ),
    factory=_accel_sequential_factory,
), aliases=("fast",))

register_engine(EngineSpec(
    name="accel-conservative",
    summary="partitioned YAWNS execution with the window loop in the "
            "compiled repro.accel kernel (bit-identical pure-Python "
            "fallback)",
    params=(
        Param("partitions", "int", "LP partitions (grouped topology-aware)",
              default=4, minimum=1),
        Param("lookahead", "float",
              "explicit lookahead override in seconds (default: derived "
              "from the partition plan's cross-partition links)",
              default=None),
        Param("backend", "str", _BACKEND_DOC,
              default="compiled", choices=("compiled", "python")),
    ),
    factory=_accel_conservative_factory,
    partitioned=True,
), aliases=("fast-yawns",))
