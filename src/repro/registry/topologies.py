"""Topology registry: every fabric model as a named, parameterized spec.

Each :class:`TopologySpec` declares its typed parameters, its scale
*presets* (``mini``/``paper`` parameter bundles, so ``--scale`` and the
scenario ``[topology]`` table mean the same thing everywhere), the
routing policies that can run on it, sensible routing/placement
defaults, and two capability flags the placement layer consults:

``has_groups``
    Dragonfly-style group structure (``n_groups``, ``nodes_of_group``,
    ``group_of``): required by the RG placement and the group-level
    measurement reductions.
``uniform_nodes``
    Every router hosts exactly ``nodes_per_router`` compute nodes:
    required by the RR placement (a fat-tree attaches nodes to edge
    switches only, so handing a job "whole routers" would silently
    under-allocate there).

Resolution order for a ``[topology]`` table: start from the preset
named by ``scale`` (default ``mini``), overlay any explicitly given
parameters, then call the factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.network.fattree import FatTreeTopology
from repro.network.slimfly import SlimFlyTopology
from repro.network.torus import TorusTopology
from repro.registry.core import ComponentSpec, Param, Registry, RegistryError, _err

#: Scales every topology must provide a preset for.
SCALES = ("mini", "paper")


@dataclass(frozen=True)
class TopologySpec(ComponentSpec):
    """One registered fabric model."""

    cls: type | None = None
    factory: Callable[..., Any] | None = None
    presets: Mapping[str, Mapping[str, Any]] | None = None
    routings: tuple[str, ...] = ()
    default_routing: str = ""
    default_placement: str = "rn"
    has_groups: bool = False
    uniform_nodes: bool = True

    def build(self, params: Mapping[str, Any]) -> Any:
        factory = self.factory or self.cls
        assert factory is not None
        return factory(**params)


topology_registry = Registry("topology")


def register_topology(spec: TopologySpec, aliases: tuple[str, ...] = (),
                      replace: bool = False) -> TopologySpec:
    """Add a fabric model to the roster (``docs/registry.md`` shows how)."""
    missing = [s for s in SCALES if s not in (spec.presets or {})]
    if missing:
        raise ValueError(f"topology {spec.name!r} lacks presets for {missing}")
    if not spec.routings or spec.default_routing not in spec.routings:
        raise ValueError(f"topology {spec.name!r}: default_routing must be "
                         f"one of its routings {spec.routings}")
    # The default placement must be runnable on the topology's own
    # declared capabilities, or every spec/CLI invocation that names the
    # topology without an explicit placement would fail confusingly.
    # Checked lazily: during this package's own bootstrap the placement
    # registry is not populated yet (the built-ins are correct by
    # construction).
    import sys

    placements = sys.modules.get("repro.registry.placements")
    placement_registry = getattr(placements, "placement_registry", None)
    if placement_registry is not None and spec.default_placement in placement_registry:
        caps = Capabilities(spec.name, spec.has_groups, spec.uniform_nodes)
        pspec = placement_registry.get(spec.default_placement)
        if not pspec.supports(caps):
            raise ValueError(
                f"topology {spec.name!r}: default_placement "
                f"{spec.default_placement!r} is not available on it "
                f"(declared capabilities: has_groups={spec.has_groups}, "
                f"uniform_nodes={spec.uniform_nodes})"
            )
    topology_registry.register(spec, aliases=aliases, replace=replace)
    return spec


def resolve_topology_params(
    spec: TopologySpec, table: Mapping[str, Any], path: str = "topology"
) -> dict[str, Any]:
    """Preset-then-overlay resolution of one ``[topology]`` table.

    ``table`` holds everything except the ``type`` key: an optional
    ``scale`` naming a preset plus explicit parameter overrides.
    """
    table = dict(table)
    scale = table.pop("scale", "mini")
    if not isinstance(scale, str) or scale not in SCALES:
        raise _err(f"{path}.scale",
                   f"unknown scale {scale!r}; expected one of {list(SCALES)}")
    params = dict(spec.presets[scale])
    params.update(spec.validate_params(table, path, kind="topology"))
    return params


def build_topology(table: Mapping[str, Any], path: str = "topology") -> Any:
    """Instantiate a topology from a canonical ``{"type": ..., ...}`` table."""
    table = dict(table)
    name = table.pop("type", None)
    if name is None:
        raise _err(path, "missing 'type' key naming the topology")
    spec = topology_registry.get(name, path=f"{path}.type")
    assert isinstance(spec, TopologySpec)
    return spec.build(resolve_topology_params(spec, table, path))


def spec_for_instance(topo: Any) -> TopologySpec | None:
    """The registered spec a live topology object belongs to, if any."""
    for spec in topology_registry:
        assert isinstance(spec, TopologySpec)
        if spec.cls is not None and type(topo) is spec.cls:
            return spec
    for spec in topology_registry:  # subclasses of registered models
        assert isinstance(spec, TopologySpec)
        if spec.cls is not None and isinstance(topo, spec.cls):
            return spec
    return None


def topology_label(topo: Any) -> str:
    """Short display name of a topology instance (registry name if known)."""
    spec = spec_for_instance(topo)
    if spec is not None:
        return spec.name
    return getattr(topo, "name", type(topo).__name__)


@dataclass(frozen=True)
class Capabilities:
    """What the placement layer may assume about a topology."""

    label: str
    has_groups: bool
    uniform_nodes: bool


def capabilities_of(topo: Any) -> Capabilities:
    """Capability flags of a topology instance.

    Registered models answer from their spec; unknown (user-built)
    models are probed with the same structural predicates the placement
    policies enforce directly, so both entry points always agree.
    """
    spec = spec_for_instance(topo)
    if spec is not None:
        return Capabilities(spec.name, spec.has_groups, spec.uniform_nodes)
    from repro.placement.policies import (
        topology_has_groups,
        topology_has_uniform_routers,
    )

    return Capabilities(
        topology_label(topo),
        topology_has_groups(topo),
        topology_has_uniform_routers(topo),
    )


# -- built-in roster ---------------------------------------------------------

_DRAGONFLY_PARAMS = (
    Param("n_groups", "int", "number of all-to-all connected groups", minimum=2),
    Param("routers_per_group", "int", "routers in each group", minimum=1),
    Param("nodes_per_router", "int", "compute nodes per router", minimum=1),
    Param("global_per_router", "int", "global channels per router (h)", minimum=1),
)

register_topology(TopologySpec(
    name="dragonfly1d",
    summary="1D dragonfly: fully-connected groups (Kim et al., ISCA'08)",
    params=_DRAGONFLY_PARAMS,
    cls=Dragonfly1D,
    presets={
        "mini": dict(n_groups=9, routers_per_group=8, nodes_per_router=2,
                     global_per_router=2),
        "paper": dict(n_groups=33, routers_per_group=32, nodes_per_router=8,
                      global_per_router=4),
    },
    routings=("min", "adp"),
    default_routing="adp",
    default_placement="rg",
    has_groups=True,
    uniform_nodes=True,
), aliases=("1d",))

register_topology(TopologySpec(
    name="dragonfly2d",
    summary="2D dragonfly: row/column grid groups (Slingshot-style)",
    params=(
        Param("n_groups", "int", "number of groups", minimum=2),
        Param("rows", "int", "router grid rows per group", minimum=1),
        Param("cols", "int", "router grid columns per group", minimum=1),
        Param("nodes_per_router", "int", "compute nodes per router", minimum=1),
        Param("global_per_router", "int", "global channels per router (h)", minimum=1),
    ),
    cls=Dragonfly2D,
    presets={
        "mini": dict(n_groups=6, rows=4, cols=6, nodes_per_router=1,
                     global_per_router=2),
        "paper": dict(n_groups=22, rows=6, cols=16, nodes_per_router=4,
                      global_per_router=7),
    },
    routings=("min", "adp"),
    default_routing="adp",
    default_placement="rg",
    has_groups=True,
    uniform_nodes=True,
), aliases=("2d",))

register_topology(TopologySpec(
    name="fattree",
    summary="three-level k-ary fat-tree (Clos), full bisection",
    params=(
        Param("k", "int", "switch radix; even, k^3/4 nodes", minimum=2),
    ),
    cls=FatTreeTopology,
    presets={
        "mini": dict(k=8),      # 128 nodes, 80 switches
        "paper": dict(k=16),    # 1024 nodes, 320 switches
    },
    routings=("dmodk", "random", "adaptive"),
    default_routing="dmodk",
    default_placement="rn",
    has_groups=False,
    uniform_nodes=False,  # only edge switches host nodes
), aliases=("fat-tree",))

register_topology(TopologySpec(
    name="torus",
    summary="k-ary n-dimensional torus with dimension-order routing",
    params=(
        Param("dims", "int_list", "ring length per dimension", minimum=2),
        Param("nodes_per_router", "int", "compute nodes per router", minimum=1),
    ),
    cls=TorusTopology,
    presets={
        "mini": dict(dims=(4, 4, 4), nodes_per_router=2),    # 128 nodes
        "paper": dict(dims=(8, 8, 8), nodes_per_router=4),   # 2048 nodes
    },
    routings=("dor",),
    default_routing="dor",
    default_placement="rn",
    has_groups=False,
    uniform_nodes=True,
))

register_topology(TopologySpec(
    name="slimfly",
    summary="Slim Fly MMS graph: degree-optimal diameter-2 network",
    params=(
        Param("q", "int", "prime q = 4w + 1 (5, 13, 17, ...); 2q^2 routers",
              minimum=2),
        Param("nodes_per_router", "int", "compute nodes per router", minimum=1),
    ),
    cls=SlimFlyTopology,
    presets={
        "mini": dict(q=5, nodes_per_router=2),     # 100 nodes
        "paper": dict(q=13, nodes_per_router=6),   # 2028 nodes
    },
    routings=("min", "adaptive"),
    default_routing="min",
    default_placement="rn",
    has_groups=False,
    uniform_nodes=True,
), aliases=("slim-fly",))
