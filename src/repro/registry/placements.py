"""Placement registry: policies with declared topology requirements.

The three paper policies map rank lists onto node sets, but two of them
assume dragonfly structure: RR hands out *whole routers* (so every
router must host nodes uniformly) and RG hands out *whole groups* (so
the topology must have groups at all).  Each :class:`PlacementSpec`
declares that requirement, and :func:`check_placement` turns a mismatch
into the canonical capability error::

    placement 'rg' is not available on topology 'torus' (requires
    dragonfly-style group structure); choose from ['rr', 'rn']
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.placement.policies import random_groups, random_nodes, random_routers
from repro.registry.core import ComponentSpec, Registry, RegistryError, _err
from repro.registry.topologies import Capabilities, capabilities_of

#: Requirement keys a placement may declare.
REQUIRES_GROUPS = "groups"
REQUIRES_UNIFORM = "uniform-nodes"

_REQUIREMENT_TEXT = {
    REQUIRES_GROUPS: "dragonfly-style group structure",
    REQUIRES_UNIFORM: "every router to host nodes (uniform node attachment)",
}


@dataclass(frozen=True)
class PlacementSpec(ComponentSpec):
    """One placement policy."""

    func: Callable[..., list[list[int]]] | None = None
    requires: str | None = None  # None | REQUIRES_GROUPS | REQUIRES_UNIFORM

    def supports(self, caps: Capabilities) -> bool:
        if self.requires == REQUIRES_GROUPS:
            return caps.has_groups
        if self.requires == REQUIRES_UNIFORM:
            return caps.uniform_nodes
        return True


placement_registry = Registry("placement")


def register_placement(spec: PlacementSpec, replace: bool = False) -> PlacementSpec:
    placement_registry.register(spec, replace=replace)
    return spec


def available_placements(topo: Any) -> tuple[str, ...]:
    """Placement names usable on ``topology`` (instance or registry name)."""
    caps = _caps(topo)
    return tuple(
        s.name for s in placement_registry
        if isinstance(s, PlacementSpec) and s.supports(caps)
    )


def _caps(topo: Any) -> Capabilities:
    if isinstance(topo, str):
        from repro.registry.topologies import TopologySpec, topology_registry

        spec = topology_registry.get(topo)
        assert isinstance(spec, TopologySpec)
        return Capabilities(spec.name, spec.has_groups, spec.uniform_nodes)
    return capabilities_of(topo)


def check_placement(name: str, topo: Any, path: str = "") -> PlacementSpec:
    """Resolve a placement name and verify the topology satisfies its
    requirement; raises :class:`RegistryError` otherwise."""
    caps = _caps(topo)
    key = name.lower() if isinstance(name, str) else name
    if key not in placement_registry:
        raise _err(path, f"{name!r} is not one of {list(available_placements(topo))}")
    spec = placement_registry.get(key, path=path)
    assert isinstance(spec, PlacementSpec)
    if not spec.supports(caps):
        need = _REQUIREMENT_TEXT[spec.requires]
        raise _err(path, f"placement {spec.name!r} is not available on topology "
                         f"{caps.label!r} (requires {need}); "
                         f"choose from {list(available_placements(topo))}")
    return spec


# -- built-in roster (paper panel order: rg, rr, rn) -------------------------

register_placement(PlacementSpec(
    "rg", "random groups: jobs own whole groups, confining their traffic",
    func=random_groups, requires=REQUIRES_GROUPS))
register_placement(PlacementSpec(
    "rr", "random routers: jobs own whole routers, no router-level sharing",
    func=random_routers, requires=REQUIRES_UNIFORM))
register_placement(PlacementSpec(
    "rn", "random nodes: uniform draw over the whole system",
    func=random_nodes))
