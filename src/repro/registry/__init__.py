"""Component registry: one spec-driven API for topologies, routings
and placements.

The paper's workload manager sweeps *configurations* -- topology x
routing x placement -- so every one of those dimensions is a named,
self-describing, parameterized component here instead of a frozen
tuple in some dispatch site.  The scenario parser, the harness, the
workload manager and the CLI all derive their choices, defaults and
help text from this package; registering a new fabric or policy makes
it reachable from every surface at once (``docs/registry.md``).

* :mod:`repro.registry.core`       -- generic registry + typed params
* :mod:`repro.registry.topologies` -- fabric models with scale presets
* :mod:`repro.registry.routings`   -- per-topology routing capability
* :mod:`repro.registry.placements` -- policies with declared requirements
* :mod:`repro.registry.engines`    -- PDES execution engines
* :mod:`repro.registry.policies`   -- session control policies
* :mod:`repro.registry.generators` -- generative scenario factories
"""

from repro.registry.core import ComponentSpec, Param, Registry, RegistryError
from repro.registry.generators import (
    GeneratorSpec,
    available_generators,
    build_generator,
    generator_registry,
    register_generator,
)
from repro.registry.engines import (
    EngineSpec,
    available_engines,
    build_engine,
    engine_registry,
    register_engine,
)
from repro.registry.policies import (
    PolicySpec,
    available_policies,
    build_policy,
    policy_registry,
    register_policy,
)
from repro.registry.placements import (
    PlacementSpec,
    available_placements,
    check_placement,
    placement_registry,
    register_placement,
)
from repro.registry.routings import (
    RoutingSpec,
    all_routing_names,
    available_routings,
    register_routing,
    resolve_routing,
    routing_spec,
)
from repro.registry.topologies import (
    SCALES,
    Capabilities,
    TopologySpec,
    build_topology,
    capabilities_of,
    register_topology,
    resolve_topology_params,
    spec_for_instance,
    topology_label,
    topology_registry,
)

__all__ = [
    "Capabilities",
    "ComponentSpec",
    "EngineSpec",
    "GeneratorSpec",
    "Param",
    "PlacementSpec",
    "PolicySpec",
    "Registry",
    "RegistryError",
    "RoutingSpec",
    "SCALES",
    "TopologySpec",
    "all_routing_names",
    "available_engines",
    "available_generators",
    "available_placements",
    "available_policies",
    "available_routings",
    "build_engine",
    "build_generator",
    "build_policy",
    "build_topology",
    "engine_registry",
    "generator_registry",
    "policy_registry",
    "register_engine",
    "register_generator",
    "register_policy",
    "capabilities_of",
    "check_placement",
    "placement_registry",
    "register_placement",
    "register_routing",
    "register_topology",
    "resolve_routing",
    "resolve_topology_params",
    "routing_spec",
    "spec_for_instance",
    "topology_label",
    "topology_registry",
]
