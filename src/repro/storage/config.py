"""Storage server parameters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StorageConfig:
    """Service model of one storage server.

    A request arriving at time ``t`` starts service when the device is
    free, holds it for ``access_latency + nbytes / bw`` seconds, then
    the response is injected into the network.  Defaults approximate a
    burst-buffer-class NVMe target.

    Attributes
    ----------
    write_bw / read_bw:
        Device bandwidth in bytes/second.
    access_latency:
        Fixed per-operation device latency in seconds.
    request_bytes:
        Wire size of a read request / write header (RPC envelope).
    ack_bytes:
        Wire size of a write acknowledgement.
    """

    write_bw: float = 2.0 * 2**30
    read_bw: float = 4.0 * 2**30
    access_latency: float = 50e-6
    request_bytes: int = 128
    ack_bytes: int = 64

    def __post_init__(self) -> None:
        if self.write_bw <= 0 or self.read_bw <= 0:
            raise ValueError("storage bandwidths must be positive")
        if self.access_latency < 0:
            raise ValueError(f"access_latency must be >= 0, got {self.access_latency}")
        if self.request_bytes < 0 or self.ack_bytes < 0:
            raise ValueError("request_bytes and ack_bytes must be >= 0")

    def service_time(self, kind: str, nbytes: int) -> float:
        """Device occupancy of one operation (seconds)."""
        bw = self.write_bw if kind == "write" else self.read_bw
        return self.access_latency + nbytes / bw
