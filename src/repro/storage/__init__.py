"""Simulated storage subsystem (the paper's Section VII extension).

The paper's discussion section plans two changes for hybrid-workload
I/O analysis: application-level I/O operations, and a CODES storage
module simulating communication and I/O traffic concurrently.  This
package provides both halves for our fabric:

* :class:`~repro.storage.system.StorageSystem` attaches storage servers
  to chosen compute nodes; requests and responses travel over the same
  simulated interconnect as MPI traffic (so I/O and communication
  contend for links, which is the entire point);
* rank programs issue :class:`~repro.storage.ops.IORead` /
  :class:`~repro.storage.ops.IOWrite` operations, or use the blocking
  :func:`~repro.storage.ops.read_file` / :func:`~repro.storage.ops.write_file`
  helpers.

Example::

    fabric = NetworkFabric(topo, routing="adp")
    mpi = SimMPI(fabric)
    storage = StorageSystem(mpi, server_nodes=[30, 31])

    def checkpointer(ctx):
        yield ctx.compute(1e-3)
        yield from write_file(ctx, storage, server=0, nbytes=1 << 20)

    mpi.add_job(JobSpec("ckpt", 4, checkpointer, [0, 1, 2, 3]))
    mpi.run(until=1.0)
"""

from repro.storage.config import StorageConfig
from repro.storage.ops import IORead, IOWrite, read_file, write_file
from repro.storage.server import StorageServer
from repro.storage.system import IOStats, StorageSystem

__all__ = [
    "IORead",
    "IOStats",
    "IOWrite",
    "StorageConfig",
    "StorageServer",
    "StorageSystem",
    "read_file",
    "write_file",
]
