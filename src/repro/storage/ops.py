"""I/O operations yieldable from rank programs.

Nonblocking form (mirrors Isend/Irecv)::

    req = yield IOWrite(storage, server=0, nbytes=1 << 20)
    ...overlap computation...
    yield ctx.wait(req)

Blocking helpers::

    yield from write_file(ctx, storage, server=0, nbytes=1 << 20)
    msg = yield from read_file(ctx, storage, server=0, nbytes=1 << 20)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generator

from repro.mpi.types import Wait

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.system import StorageSystem


class IOWrite:
    """Nonblocking write of ``nbytes`` to ``server``.

    The engine resumes immediately with a :class:`~repro.mpi.types.Request`
    that completes when the server's acknowledgement arrives back at the
    issuing rank's node (data has been shipped over the network *and*
    retired by the device).
    """

    __slots__ = ("storage", "server", "nbytes")

    def __init__(self, storage: "StorageSystem", server: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"write size must be >= 0, got {nbytes}")
        self.storage = storage
        self.server = server
        self.nbytes = nbytes


class IORead:
    """Nonblocking read of ``nbytes`` from ``server``.

    The request completes when the data message arrives at the issuing
    rank's node.
    """

    __slots__ = ("storage", "server", "nbytes")

    def __init__(self, storage: "StorageSystem", server: int, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError(f"read size must be >= 0, got {nbytes}")
        self.storage = storage
        self.server = server
        self.nbytes = nbytes


def write_file(ctx, storage: "StorageSystem", server: int, nbytes: int) -> Generator:
    """Blocking write: returns once the server acknowledged the data."""
    ctx.stats.count("IO_Write")
    req = yield IOWrite(storage, server, nbytes)
    yield Wait(req)


def read_file(ctx, storage: "StorageSystem", server: int, nbytes: int) -> Generator:
    """Blocking read: returns once the data arrived at this rank."""
    ctx.stats.count("IO_Read")
    req = yield IORead(storage, server, nbytes)
    result = yield Wait(req)
    return result
