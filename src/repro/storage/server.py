"""StorageServer: a FIFO storage device attached to one compute node.

The server is an LP on the shared PDES engine.  Incoming requests (which
arrive as fabric messages) are serialized through the device: a request
starts service when the device frees up, occupies it for
``config.service_time(kind, nbytes)``, and the response is injected into
the network at completion time.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.pdes.event import Event
from repro.pdes.lp import LP
from repro.storage.config import StorageConfig

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.system import _IOTransaction


class StorageServer(LP):
    """One storage target.

    Attributes
    ----------
    server_id:
        Index of this server within its :class:`StorageSystem`.
    node:
        Compute node whose NIC this server uses.
    busy_until:
        Time the device frees up; requests arriving earlier queue.
    """

    __slots__ = (
        "server_id",
        "node",
        "config",
        "busy_until",
        "bytes_written",
        "bytes_read",
        "ops_served",
        "busy_time",
        "queue_time",
    )

    def __init__(self, server_id: int, node: int, config: StorageConfig) -> None:
        super().__init__()
        self.server_id = server_id
        self.node = node
        self.config = config
        self.busy_until = 0.0
        self.bytes_written = 0
        self.bytes_read = 0
        self.ops_served = 0
        self.busy_time = 0.0
        self.queue_time = 0.0

    def admit(self, txn: "_IOTransaction", engine, now: float) -> float:
        """Serialize one request through the device; returns completion time.

        Called by the transaction hook when the request message has
        fully arrived at the server's node.
        """
        start = max(now, self.busy_until)
        svc = self.config.service_time(txn.kind, txn.nbytes)
        done = start + svc
        self.busy_until = done
        self.queue_time += start - now
        self.busy_time += svc
        self.ops_served += 1
        if txn.kind == "write":
            self.bytes_written += txn.nbytes
        else:
            self.bytes_read += txn.nbytes
        engine.schedule_at(done, self.lp_id, "io_done", txn)
        return done

    def handle(self, event: Event) -> None:
        if event.kind != "io_done":  # pragma: no cover - defensive
            raise ValueError(f"storage server got unknown event kind {event.kind!r}")
        event.data.on_device_done(event.time)

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` the device spent serving."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
