"""StorageSystem: wires storage servers into a running SimMPI simulation.

Request and response bytes travel the simulated interconnect, so I/O
traffic interferes with MPI traffic on shared links -- the concurrent
communication + I/O simulation the paper's discussion section calls for.

Flow of one operation (``write`` shown; ``read`` swaps the payload to
the response leg)::

    rank yields IOWrite --> request message (header + data) ..network..
      --> server node --> device FIFO (service time) --> ack message
      ..network.. --> rank's node --> Request completes
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.mpi.engine import SimMPI
from repro.mpi.types import MessageHook, Request
from repro.storage.config import StorageConfig
from repro.storage.ops import IORead, IOWrite
from repro.storage.server import StorageServer


@dataclass
class IOStats:
    """Aggregate I/O metrics of one application."""

    ops: int = 0
    bytes_written: int = 0
    bytes_read: int = 0
    total_latency: float = 0.0
    max_latency: float = 0.0

    def mean_latency(self) -> float:
        return self.total_latency / self.ops if self.ops else 0.0


class _IOTransaction(MessageHook):
    """One in-flight read or write; doubles as the message hook for both
    the request and the response leg."""

    __slots__ = (
        "system",
        "server",
        "req",
        "kind",
        "nbytes",
        "app_id",
        "client_node",
        "issued_at",
        "phase",
    )

    def __init__(
        self,
        system: "StorageSystem",
        server: StorageServer,
        req: Request,
        kind: str,
        nbytes: int,
        app_id: int,
        client_node: int,
        issued_at: float,
    ) -> None:
        self.system = system
        self.server = server
        self.req = req
        self.kind = kind
        self.nbytes = nbytes
        self.app_id = app_id
        self.client_node = client_node
        self.issued_at = issued_at
        self.phase = "request"

    def on_delivered(self, time: float) -> None:
        if self.phase == "request":
            self.server.admit(self, self.system.mpi.engine, time)
        else:
            self.system._finish(self, time)

    def on_device_done(self, time: float) -> None:
        """Device retired the op; send the response leg."""
        self.phase = "response"
        cfg = self.system.config
        payload = cfg.ack_bytes if self.kind == "write" else self.nbytes
        self.system.mpi.fabric.send_message(
            self.app_id, self.server.node, self.client_node, payload, self
        )


class StorageSystem:
    """A set of storage servers on a simulated network.

    Parameters
    ----------
    mpi:
        The :class:`~repro.mpi.engine.SimMPI` runtime to attach to.
        Handlers for :class:`IORead` / :class:`IOWrite` are registered
        on it; at most one StorageSystem per SimMPI.
    server_nodes:
        Compute node ids hosting a storage server each.  Placement
        matters: servers inside a busy group contend with that group's
        MPI traffic.
    config:
        Device parameters, shared by all servers.
    """

    def __init__(self, mpi: SimMPI, server_nodes: list[int], config: StorageConfig | None = None) -> None:
        if not server_nodes:
            raise ValueError("need at least one storage server node")
        n_nodes = mpi.fabric.topo.n_nodes
        for node in server_nodes:
            if not 0 <= node < n_nodes:
                raise ValueError(f"storage node {node} outside system of {n_nodes} nodes")
        self.mpi = mpi
        self.config = config or StorageConfig()
        self.servers: list[StorageServer] = []
        for i, node in enumerate(server_nodes):
            srv = StorageServer(i, node, self.config)
            # Pin the server into its node's partition: request arrival,
            # device completion and the response injection all exchange
            # sub-lookahead events with the node's terminal.
            mpi.engine.register(
                srv,
                partition=mpi.engine.partition_of(mpi.fabric.terminal_lp_id(node)),
            )
            self.servers.append(srv)
        self._stats: dict[int, IOStats] = {}
        mpi.register_op_handler(IOWrite, self._handle_op)
        mpi.register_op_handler(IORead, self._handle_op)

    # -- op handling -------------------------------------------------------
    def _handle_op(self, mpi: SimMPI, rs, op) -> Request:
        if op.storage is not self:
            raise ValueError("I/O op targets a different StorageSystem")
        if not 0 <= op.server < len(self.servers):
            raise ValueError(f"server {op.server} out of range (have {len(self.servers)})")
        kind = "write" if isinstance(op, IOWrite) else "read"
        now = mpi.engine.now
        server = self.servers[op.server]
        req = Request(f"io-{kind}", rs.rank, op.nbytes, -1, -1, now)
        txn = _IOTransaction(self, server, req, kind, op.nbytes, rs.job.app_id, rs.node, now)
        payload = self.config.request_bytes + (op.nbytes if kind == "write" else 0)
        mpi.fabric.send_message(rs.job.app_id, rs.node, server.node, payload, txn)
        return req

    def _finish(self, txn: _IOTransaction, time: float) -> None:
        st = self._stats.setdefault(txn.app_id, IOStats())
        st.ops += 1
        if txn.kind == "write":
            st.bytes_written += txn.nbytes
        else:
            st.bytes_read += txn.nbytes
        latency = time - txn.issued_at
        st.total_latency += latency
        st.max_latency = max(st.max_latency, latency)
        self.mpi._complete_request(txn.req, latency)

    # -- inspection ----------------------------------------------------------
    def app_stats(self, app_id: int) -> IOStats:
        """I/O metrics of one application (zeroes if it did no I/O)."""
        return self._stats.get(app_id, IOStats())

    def total_bytes(self) -> int:
        return sum(s.bytes_written + s.bytes_read for s in self.servers)
