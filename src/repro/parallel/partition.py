"""Topology-aware LP partitioning for conservative execution.

The paper's CODES/ROSS runs map router LPs (and the terminals attached
to them) onto processors so that the cheapest links stay processor-local
and the minimum latency of the links that *do* cross processors provides
the YAWNS lookahead.  :func:`plan_partitions` reproduces that mapping
per fabric family:

* **dragonfly** (group-structured): whole groups per partition, so only
  global links cross -- the widest possible lookahead (global latency
  plus the router pipeline delay);
* **fat-tree**: whole pods per partition, core switches spread in
  contiguous blocks; only aggregation<->core (class GLOBAL) links cross;
* **torus**: contiguous slabs along the longest dimension, so only the
  slab-boundary neighbor links cross;
* anything else (slim fly, custom fabrics): contiguous router blocks.

Terminals always follow their router (a terminal and its router
exchange sub-lookahead events every packet), and the resulting
:class:`PartitionPlan` doubles as the engine's ``partition_fn`` because
the fabric registers LPs in a fixed order: routers ``0..n_routers-1``
first, then terminals.  LPs registered later (MPI drivers, storage
servers) are pinned with an explicit ``register(partition=...)`` hint;
the plan refuses to guess for them.

:func:`min_cross_partition_latency` derives the lookahead from the plan
by scanning every router-router link that crosses partitions -- the
engine's contract then *proves* the plan safe at runtime instead of
assuming it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.network.config import NetworkConfig


class PartitionError(ValueError):
    """A partition request the topology cannot satisfy; the message
    names the constraint and the valid range."""


def _label(topo: Any) -> str:
    return getattr(topo, "name", type(topo).__name__)


@dataclass(frozen=True)
class PartitionPlan:
    """An LP -> partition assignment for one fabric.

    ``part_of_router``/``part_of_node`` index by router/node id; the
    plan is callable with a fabric LP id (routers first, then
    terminals -- the registration order of
    :class:`~repro.network.fabric.NetworkFabric`), making it a valid
    ``partition_fn`` for :class:`~repro.pdes.conservative.ConservativeEngine`.
    """

    n_partitions: int
    part_of_router: tuple[int, ...]
    part_of_node: tuple[int, ...]
    scheme: str  # "group" | "pod" | "slab" | "block"

    def __call__(self, lp_id: int) -> int:
        n_routers = len(self.part_of_router)
        if lp_id < n_routers:
            return self.part_of_router[lp_id]
        node = lp_id - n_routers
        if node < len(self.part_of_node):
            return self.part_of_node[node]
        raise LookupError(
            f"LP {lp_id} is not a fabric LP of this plan "
            f"({n_routers} routers + {len(self.part_of_node)} terminals); "
            "register control LPs with an explicit partition= hint"
        )

    def routers_of(self, partition: int) -> list[int]:
        return [r for r, p in enumerate(self.part_of_router) if p == partition]

    def describe(self) -> dict[str, Any]:
        sizes = [0] * self.n_partitions
        for p in self.part_of_router:
            sizes[p] += 1
        return {
            "scheme": self.scheme,
            "n_partitions": self.n_partitions,
            "routers_per_partition": sizes,
        }


def plan_partitions(topo: Any, n_partitions: int) -> PartitionPlan:
    """Topology-aware partitioning of a fabric's routers and terminals.

    Raises :class:`PartitionError` when the request does not fit the
    topology's structure (more partitions than groups/pods/slabs), so a
    bad engine config fails before any simulation state exists.
    """
    if n_partitions < 1:
        raise PartitionError(
            f"partitions must be >= 1, got {n_partitions}"
        )
    n_routers = topo.n_routers
    if n_partitions > n_routers:
        raise PartitionError(
            f"cannot split {_label(topo)!r} ({n_routers} routers) into "
            f"{n_partitions} partitions: more partitions than routers"
        )

    if hasattr(topo, "group_of") and hasattr(topo, "n_groups"):
        n_groups = topo.n_groups
        if n_partitions > n_groups:
            raise PartitionError(
                f"cannot split {_label(topo)!r} into {n_partitions} "
                f"partitions: only {n_groups} groups, and a partition "
                "boundary through a group would cut sub-lookahead local "
                f"links (use at most {n_groups} partitions)"
            )
        part_of_router = tuple(
            topo.group_of(r) * n_partitions // n_groups for r in range(n_routers)
        )
        scheme = "group"
    elif hasattr(topo, "pod_of") and hasattr(topo, "n_pods"):
        n_pods = topo.n_pods
        if n_partitions > n_pods:
            raise PartitionError(
                f"cannot split {_label(topo)!r} into {n_partitions} "
                f"partitions: only {n_pods} pods, and a partition boundary "
                "through a pod would cut sub-lookahead edge-aggregation "
                f"links (use at most {n_pods} partitions)"
            )
        n_core = topo.n_core
        parts = []
        for r in range(n_routers):
            if topo.is_core(r):
                core = r - (n_routers - n_core)
                parts.append(core * n_partitions // n_core)
            else:
                parts.append(topo.pod_of(r) * n_partitions // n_pods)
        part_of_router = tuple(parts)
        scheme = "pod"
    elif hasattr(topo, "dims") and hasattr(topo, "coords"):
        dims = tuple(topo.dims)
        axis = max(range(len(dims)), key=lambda i: dims[i])
        if n_partitions > dims[axis]:
            raise PartitionError(
                f"cannot split {_label(topo)!r} {dims} into {n_partitions} "
                f"slabs: the longest dimension has only {dims[axis]} rings "
                f"(use at most {dims[axis]} partitions)"
            )
        part_of_router = tuple(
            topo.coords(r)[axis] * n_partitions // dims[axis]
            for r in range(n_routers)
        )
        scheme = "slab"
    else:
        part_of_router = tuple(
            r * n_partitions // n_routers for r in range(n_routers)
        )
        scheme = "block"

    part_of_node = tuple(
        part_of_router[topo.router_of_node(node)] for node in range(topo.n_nodes)
    )
    return PartitionPlan(n_partitions, part_of_router, part_of_node, scheme)


def min_cross_partition_latency(
    topo: Any, config: NetworkConfig, plan: PartitionPlan
) -> float | None:
    """Minimum delay of any event crossing the plan's partitions.

    Scans every directed router-router link whose endpoints land in
    different partitions; the model forwards a packet over such a link
    no sooner than the link's propagation latency plus the router
    pipeline delay, so that sum is a safe lookahead.  Returns ``None``
    when no link crosses (a single partition).
    """
    part = plan.part_of_router
    best: float | None = None
    for r, ports in enumerate(topo.router_ports):
        for p in ports:
            if p.peer_router < 0 or part[p.peer_router] == part[r]:
                continue
            delay = config.latency(p.link_class) + config.router_delay
            if best is None or delay < best:
                best = delay
    return best
