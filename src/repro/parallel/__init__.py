"""``repro.parallel``: partitioned conservative execution for the full
network/MPI stack.

The source paper runs its hybrid-workload simulations on CODES/ROSS in
conservative (YAWNS) mode, where the minimum link latency provides the
lookahead.  This package makes that execution model drive the
production stack: it partitions a fabric's LPs topology-aware (whole
dragonfly groups / fat-tree pods / torus slabs per partition, terminals
and MPI driver LPs co-located with their routers' partitions), derives
the lookahead from the minimum cross-partition link latency, and wires
the result into :class:`~repro.pdes.conservative.ConservativeEngine`.

Surfaces: the ``engine`` component family in :mod:`repro.registry`
(scenario ``[engine]`` tables, ``--engine``/``--partitions`` CLI
flags), :class:`~repro.union.manager.WorkloadManager`'s ``engine``
parameter, and the ``pdes.conservative.*`` telemetry gauges.  The
execution model and the lookahead contract are documented in
``docs/engines.md``.

* :mod:`repro.parallel.partition` -- topology-aware partition plans
* :mod:`repro.parallel.runtime`   -- engine factory + telemetry binding
"""

from repro.parallel.partition import (
    PartitionError,
    PartitionPlan,
    min_cross_partition_latency,
    plan_partitions,
)
from repro.parallel.runtime import bind_engine_telemetry, conservative_engine

__all__ = [
    "PartitionError",
    "PartitionPlan",
    "bind_engine_telemetry",
    "conservative_engine",
    "min_cross_partition_latency",
    "plan_partitions",
]
