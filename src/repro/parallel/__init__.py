"""``repro.parallel``: partitioned conservative execution for the full
network/MPI stack.

The source paper runs its hybrid-workload simulations on CODES/ROSS in
conservative (YAWNS) mode, where the minimum link latency provides the
lookahead.  This package makes that execution model drive the
production stack: it partitions a fabric's LPs topology-aware (whole
dragonfly groups / fat-tree pods / torus slabs per partition, terminals
and MPI driver LPs co-located with their routers' partitions), derives
the lookahead from the minimum cross-partition link latency, and wires
the result into :class:`~repro.pdes.conservative.ConservativeEngine`.

Surfaces: the ``engine`` component family in :mod:`repro.registry`
(scenario ``[engine]`` tables, ``--engine``/``--partitions`` CLI
flags), :class:`~repro.union.manager.WorkloadManager`'s ``engine``
parameter, and the ``pdes.conservative.*`` telemetry gauges.  The
execution model and the lookahead contract are documented in
``docs/engines.md``.

* :mod:`repro.parallel.partition` -- topology-aware partition plans
* :mod:`repro.parallel.runtime`   -- engine factory + telemetry binding
* :mod:`repro.parallel.mp`        -- true multi-process execution
"""

from repro.parallel.partition import (
    PartitionError,
    PartitionPlan,
    min_cross_partition_latency,
    plan_partitions,
)
from repro.parallel.runtime import (
    bind_engine_telemetry,
    conservative_engine,
    resolve_lookahead,
)

#: repro.parallel.mp symbols resolved lazily: the fabric imports this
#: package on its hot construction path, and the mp machinery
#: (multiprocessing, merge plumbing) is only needed when an
#: mp-conservative engine is actually requested.
_MP_EXPORTS = frozenset(
    {"MpConservativeEngine", "mp_conservative_engine", "WorkerFailure", "have_mpi4py"}
)


def __getattr__(name: str):
    if name in _MP_EXPORTS:
        import repro.parallel.mp as _mp

        return getattr(_mp, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "MpConservativeEngine",
    "PartitionError",
    "PartitionPlan",
    "WorkerFailure",
    "bind_engine_telemetry",
    "conservative_engine",
    "have_mpi4py",
    "min_cross_partition_latency",
    "mp_conservative_engine",
    "plan_partitions",
    "resolve_lookahead",
]
