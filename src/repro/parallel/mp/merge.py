"""State snapshots and the master-side merge.

At the end of every distributed run/step the master collects one plain-
data snapshot per worker and folds them into its own (built but never
executed) model, so downstream consumers -- ``observe()``, scenario
reduction, ``publish_job_metrics`` -- read exactly what a sequential
run would have produced.

The merge is *idempotent*: it recomputes every value as

    ``merged = base + sum(worker - base)``

where ``base`` is the master's state captured once at worker launch
(mostly zeros -- nothing records during build).  Each measurement is
made by exactly one worker (partition-local recording), so the deltas
partition cleanly; repeating the merge after another window of
execution simply recomputes from the fresh snapshots.

What ships, per worker:

* settable instruments -- counters, gauges, windowed bins, histograms
  (observable gauges are skipped: the master owns live closures over
  the merged state);
* fabric totals, per-node sequence counters and the in-flight message
  table (plain fields only -- metas hold live send state and stay put);
* the :class:`~repro.mpi.engine.RankStats` of the worker's *owned*
  ranks, shipped whole so the master's reductions run the exact float
  arithmetic of a sequential run.

Aggregation rules: counters/bins/histogram counts sum by delta; sum-
aggregated windowed series sum by delta per (label, bin); max-
aggregated series and settable gauges take the max over workers that
changed (a gauge set during a run -- ``launched_at`` -- is set to the
same simulated time in every worker).  Instruments created during the
run (per-job gauges and latency histograms the master never creates
because it executes nothing) are created at merge time from shipped
descriptors.  ``finished_at`` is synthesized after the rank merge: no
single worker sees a multi-partition job finish, but the owned rank
stats carry every rank's finish time.
"""

from __future__ import annotations

from collections import defaultdict
from math import inf
from typing import Any

from repro.mpi.engine import job_key
from repro.network.fabric import _MsgState
from repro.network.stats import LinkLoadAccounting, WindowedAppCounter
from repro.telemetry.instruments import Counter, Gauge, Histogram, WindowedSeries

# -- snapshots (worker side, and master base capture) ----------------------


def snapshot_instruments(telemetry) -> dict[str, dict[str, Any]]:
    """Plain-data descriptors of every settable instrument."""
    out: dict[str, dict[str, Any]] = {}
    for inst in telemetry.instruments():
        key = inst.key
        if isinstance(inst, WindowedAppCounter):
            out[key] = {
                "cls": "app_counter",
                "window": inst.window,
                "bins": {label: dict(bins) for label, bins in inst._bins.items()},
                "edge_bins": {
                    label: dict(bins) for label, bins in inst._edge_bins.items()
                },
            }
        elif isinstance(inst, LinkLoadAccounting):
            out[key] = {"cls": "link_loads", "bytes": list(inst._bytes)}
        elif isinstance(inst, WindowedSeries):
            out[key] = {
                "cls": "windowed",
                "window": inst.window,
                "agg": inst.agg,
                "template": inst.template,
                "unit": inst.unit,
                "doc": inst.doc,
                "bins": {label: dict(bins) for label, bins in inst._bins.items()},
            }
        elif isinstance(inst, Histogram):
            out[key] = {
                "cls": "histogram",
                "edges": list(inst.edges),
                "unit": inst.unit,
                "doc": inst.doc,
                "counts": list(inst._counts),
                "count": inst.count,
                "sum": inst.sum,
                "min": inst.min,
                "max": inst.max,
            }
        elif isinstance(inst, Counter):
            out[key] = {
                "cls": "counter",
                "unit": inst.unit,
                "doc": inst.doc,
                "value": inst.value,
            }
        elif isinstance(inst, Gauge):
            if inst._fn is not None:
                continue  # observable: master evaluates its own closures
            out[key] = {
                "cls": "gauge",
                "unit": inst.unit,
                "doc": inst.doc,
                "value": inst._value,
            }
    return out


def snapshot_fabric(fabric) -> dict[str, Any]:
    return {
        "messages_sent": fabric.messages_sent,
        "messages_delivered": fabric.messages_delivered,
        "bytes_sent": fabric.bytes_sent,
        "nonmin_packets": dict(fabric.nonmin_packets),
        "total_packets": dict(fabric.total_packets),
        "msg_seq": list(fabric._msg_seq),
        "pkt_seq": list(fabric._pkt_seq),
        # Metas stay behind: they hold live send-side state (requests,
        # rank references).  The merge only needs the message counted.
        "msgs": [
            (msg_id, st.size, st.remaining, st.app_id, st.dst_node, st.injected_at)
            for msg_id, st in fabric._msgs.items()
        ],
    }


def snapshot_ranks(mpi, part_of_node, partition: int) -> dict[int, list[tuple]]:
    """``{app_id: [(rank, finished, stats), ...]}`` for owned ranks only.

    A rank is owned by the partition of its node's terminal; its
    generator only ever runs there, so its stats are authoritative.
    :class:`~repro.mpi.engine.RankStats` is slots-of-plain-data and
    ships whole.
    """
    out: dict[int, list[tuple]] = {}
    for job in mpi.jobs:
        rows = [
            (rs.rank, rs.finished, rs.stats)
            for rs in job.ranks
            if part_of_node[rs.node] == partition
        ]
        if rows:
            out[job.app_id] = rows
    return out


def snapshot_worker(ws) -> dict[str, Any]:
    """The full end-of-step state shipment for one worker."""
    return {
        "partition": ws.partition,
        "instruments": snapshot_instruments(ws.session.manager.telemetry),
        "fabric": snapshot_fabric(ws.fabric),
        "ranks": snapshot_ranks(ws.mpi, ws.part_of_node, ws.partition),
    }


def capture_base(session) -> dict[str, Any]:
    """The master's pre-run state, the common ancestor of every worker."""
    return {
        "instruments": snapshot_instruments(session.manager.telemetry),
        "fabric": snapshot_fabric(session.fabric),
    }


# -- merge (master side) ---------------------------------------------------


def _merge_bins(base: dict, worker_bins: list[dict], agg: str) -> defaultdict:
    out: defaultdict = defaultdict(dict)
    if agg == "max":
        for src in [base, *worker_bins]:
            for label, bins in src.items():
                ob = out[label]
                for b, v in bins.items():
                    if v > ob.get(b, -inf):
                        ob[b] = v
        return out
    for label, bins in base.items():
        out[label] = dict(bins)
    for wb in worker_bins:
        for label, bins in wb.items():
            ob = out[label]
            bb = base.get(label, {})
            for b, v in bins.items():
                ob[b] = ob.get(b, 0) + v - bb.get(b, 0)
    return out


def _merge_instruments(telemetry, base: dict, snaps: list[dict]) -> None:
    order: list[str] = []
    seen: set[str] = set()
    for snap in snaps:
        for key in snap:
            if key not in seen:
                seen.add(key)
                order.append(key)
    # Update master-resident instruments in place (registration order is
    # untouched); instruments only the workers created are appended in
    # sorted key order -- row *streams* then differ from sequential only
    # in ordering, which every consumer treats as a mapping.
    existing = [k for k in order if telemetry.get(k) is not None]
    created = sorted(k for k in order if telemetry.get(k) is None)
    for key in existing + created:
        descs = [snap[key] for snap in snaps if key in snap]
        d0 = descs[0]
        b = base.get(key)
        cls = d0["cls"]
        inst = telemetry.get(key)
        if cls == "counter":
            if inst is None:
                inst = telemetry.counter(key, unit=d0["unit"], doc=d0["doc"])
            v0 = b["value"] if b else 0
            if inst.enabled:
                inst.value = v0 + sum(d["value"] - v0 for d in descs)
        elif cls == "gauge":
            if inst is None:
                inst = telemetry.gauge(key, unit=d0["unit"], doc=d0["doc"])
            if inst.enabled:
                v0 = b["value"] if b else None
                changed = [d["value"] for d in descs if d["value"] != v0]
                if changed:
                    inst._value = max(changed)
                elif v0 is not None:
                    inst._value = v0
        elif cls == "link_loads":
            # Needs the topology to rebuild; the master registers it at
            # fabric construction, so it can only be missing when the
            # family is disabled everywhere.
            if inst is None or not inst.enabled:
                continue
            bb = b["bytes"] if b else [0] * len(d0["bytes"])
            merged = list(bb)
            for d in descs:
                wb = d["bytes"]
                for i, v0 in enumerate(bb):
                    merged[i] += wb[i] - v0
            inst._bytes = merged
        elif cls == "app_counter":
            if inst is None or not inst.enabled:
                continue  # registered by the master's fabric when enabled
            inst._bins = _merge_bins(
                b["bins"] if b else {}, [d["bins"] for d in descs], "sum"
            )
            inst._edge_bins = _merge_bins(
                b["edge_bins"] if b else {}, [d["edge_bins"] for d in descs], "sum"
            )
        elif cls == "windowed":
            if inst is None:
                inst = telemetry.windowed(
                    key,
                    window=d0["window"],
                    unit=d0["unit"],
                    doc=d0["doc"],
                    agg=d0["agg"],
                    template=d0["template"],
                )
            if inst.enabled:
                inst._bins = _merge_bins(
                    b["bins"] if b else {}, [d["bins"] for d in descs], d0["agg"]
                )
        elif cls == "histogram":
            if inst is None:
                inst = telemetry.histogram(
                    key, edges=d0["edges"], unit=d0["unit"], doc=d0["doc"]
                )
            if inst.enabled:
                n = len(d0["counts"])
                bc = b["counts"] if b else [0] * n
                inst._counts = [
                    bc[i] + sum(d["counts"][i] - bc[i] for d in descs)
                    for i in range(n)
                ]
                b_count = b["count"] if b else 0
                b_sum = b["sum"] if b else 0.0
                inst.count = b_count + sum(d["count"] - b_count for d in descs)
                inst.sum = b_sum + sum(d["sum"] - b_sum for d in descs)
                mins = [d["min"] for d in descs if d["count"]]
                maxs = [d["max"] for d in descs if d["count"]]
                inst.min = min(mins) if mins else inf
                inst.max = max(maxs) if maxs else -inf


def _merge_fabric(fabric, base: dict, worker_fabrics: list[dict],
                  held_opens: list[list[tuple]]) -> None:
    for name in ("messages_sent", "messages_delivered", "bytes_sent"):
        v0 = base[name]
        setattr(fabric, name, v0 + sum(w[name] - v0 for w in worker_fabrics))
    for name in ("nonmin_packets", "total_packets"):
        b = base[name]
        merged = dict(b)
        for w in worker_fabrics:
            for app_id, v in w[name].items():
                merged[app_id] = merged.get(app_id, 0) + v - b.get(app_id, 0)
        setattr(fabric, name, merged)
    for name, attr in (("msg_seq", "_msg_seq"), ("pkt_seq", "_pkt_seq")):
        b0 = base[name]
        setattr(
            fabric,
            attr,
            [v0 + sum(w[name][i] - v0 for w in worker_fabrics) for i, v0 in enumerate(b0)],
        )
    # In-flight union by msg_id: a crossing message can appear at its
    # source (until injection ends), at its destination (once the open
    # record lands) and as a master-held undelivered open -- all three
    # describe the same live message.  Worker entries overwrite held
    # opens (fresher remaining/injected_at).
    msgs: dict[int, _MsgState] = {}
    for opens in held_opens:
        for msg_id, size, meta, app_id, dst_node in opens:
            msgs[msg_id] = _MsgState(size, meta, app_id, dst_node)
    for w in worker_fabrics:
        for msg_id, size, remaining, app_id, dst_node, injected_at in w["msgs"]:
            st = _MsgState(size, None, app_id, dst_node)
            st.remaining = remaining
            st.injected_at = injected_at
            msgs[msg_id] = st
    fabric._msgs = msgs


def _merge_ranks(mpi, snaps: list[dict]) -> None:
    for snap in snaps:
        for app_id, rows in snap["ranks"].items():
            job = mpi.jobs[app_id]
            for rank, finished, stats in rows:
                rs = job.ranks[rank]
                rs.stats = stats
                rs.finished = finished
    for job in mpi.jobs:
        job.done_ranks = sum(1 for rs in job.ranks if rs.finished)


def _finish_jobs(mpi, telemetry, fired: set[int]) -> None:
    """Synthesize job-completion effects no single worker could apply.

    A job spanning partitions finishes in no worker's local view (each
    counts only owned ranks), so the ``finished_at`` gauge and the
    ``job_end_callback`` fire here, from the merged rank states.
    ``fired`` persists across merges so repeated step() collections
    never re-fire a callback.
    """
    for job in mpi.jobs:
        if not job.finished:
            continue
        finished_at = max(rs.stats.finished_at for rs in job.ranks)
        telemetry.gauge(
            job_key(job.spec.name, "finished_at"), unit="seconds",
            doc="simulated time the job's last rank finished",
        ).set(finished_at)
        if mpi.job_end_callback is not None and job.app_id not in fired:
            fired.add(job.app_id)
            mpi.job_end_callback(mpi._result_of(job))


def merge_into_master(session, base: dict, snaps: list[dict],
                      held_opens: list[list[tuple]], fired: set[int]) -> None:
    """Fold every worker snapshot into the master model (idempotent)."""
    telemetry = session.manager.telemetry
    snaps = sorted(snaps, key=lambda s: s["partition"])
    _merge_instruments(
        telemetry, base["instruments"], [s["instruments"] for s in snaps]
    )
    _merge_fabric(
        session.fabric, base["fabric"], [s["fabric"] for s in snaps], held_opens
    )
    _merge_ranks(session.mpi, snaps)
    _finish_jobs(session.mpi, telemetry, fired)
