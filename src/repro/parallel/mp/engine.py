"""The ``mp-conservative`` master engine.

:class:`MpConservativeEngine` is a :class:`~repro.pdes.conservative.
ConservativeEngine` that, once a model recipe is bound, stops executing
events itself and instead coordinates one worker process per partition
(see :mod:`repro.parallel.mp.worker` for the protocol).  The master
keeps the global clock, the window loop and every aggregate statistic;
workers keep the event heaps.

Execution mode is decided once, at the first ``run``/``step``, and is
sticky:

``distributed``
    The model was distributable and the workers launched.  The master's
    own heap is discarded (the workers hold replicated copies), windows
    are driven remotely, and worker state is merged back at the end of
    every run/step so observations and reductions read sequential-
    equivalent values.
``local``
    Clean fallback: the engine behaves exactly like its superclass (the
    single-process YAWNS emulation), with the reason recorded in
    ``fallback_reason``.  Triggers: no recipe bound (``bind_model_source``
    never called, or the model failed an eligibility rule), a worker
    launch failure (e.g. spawning is impossible inside daemonic pool
    workers), or a ``max_events`` budget on the first run -- the event
    budget is a global stop condition that cannot be enforced across
    asynchronous workers without serializing them, so budgeted runs
    keep the bit-identical single-process path.

A ``max_events`` budget *after* distributed execution has begun raises:
the master no longer holds the events needed to continue locally.
"""

from __future__ import annotations

from math import inf
from typing import Any

from repro.network.config import NetworkConfig
from repro.parallel.mp.channels import (
    MP_BACKENDS,
    WorkerFailure,
    have_mpi4py,
    make_backend,
)
from repro.parallel.mp.merge import capture_base, merge_into_master
from repro.parallel.partition import PartitionError, plan_partitions
from repro.parallel.runtime import resolve_lookahead
from repro.pdes.conservative import ConservativeEngine
from repro.pdes.event import Event


class MpConservativeEngine(ConservativeEngine):
    """Conservative engine that runs partitions in worker processes."""

    def __init__(
        self,
        lookahead: float,
        n_partitions: int = 4,
        partition_fn=None,
        backend: str = "mp",
    ) -> None:
        super().__init__(lookahead, n_partitions=n_partitions, partition_fn=partition_fn)
        if backend not in MP_BACKENDS:
            raise ValueError(
                f"unknown mp backend {backend!r}; expected one of {list(MP_BACKENDS)}"
            )
        self.backend_name = backend
        #: Why the engine fell back to single-process execution
        #: (``None`` while undecided or distributed).
        self.fallback_reason: str | None = None
        self._mode: str | None = None
        self._backend = None
        self._session = None
        self._recipe_blob: bytes | None = None
        #: Per-partition local floors, refreshed from every reply.
        self._floors: list[float] = []
        #: Events / message-open records that crossed partitions last
        #: window, held for delivery with the next window message.
        self._held_events: list[list[Event]] = [[] for _ in range(n_partitions)]
        self._held_opens: list[list[tuple]] = [[] for _ in range(n_partitions)]
        self._base: dict | None = None
        self._fired: set[int] = set()

    # -- wiring ------------------------------------------------------------
    @property
    def execution_mode(self) -> str:
        """``"distributed"``, ``"local"``, or ``"undecided"``."""
        return self._mode or "undecided"

    def bind_model_source(self, session, recipe_blob: bytes | None,
                          reason: str | None) -> None:
        """Receive the distillation of the built session.

        Called by :meth:`repro.union.session.SimulationSession.build`;
        ``recipe_blob`` is ``None`` when the model is not distributable,
        with ``reason`` explaining why (it becomes ``fallback_reason``).
        """
        self._session = session
        self._recipe_blob = recipe_blob
        if recipe_blob is None and self._mode is None:
            self._mode = "local"
            self.fallback_reason = reason

    # -- mode decision -----------------------------------------------------
    def _launch(self) -> None:
        if self._recipe_blob is None:
            self._mode = "local"
            if self.fallback_reason is None:
                self.fallback_reason = (
                    "no model recipe bound: the engine was not built through "
                    "a SimulationSession, so there is nothing to ship to workers"
                )
            return
        backend = None
        try:
            backend = make_backend(self.backend_name)
            backend.launch(self._recipe_blob, self.n_partitions)
            floors = []
            for p in range(self.n_partitions):
                backend.send(p, ("floor",))
            for p in range(self.n_partitions):
                floors.append(backend.recv(p)[1])
        except Exception as exc:
            # The master heap is still intact -- nothing has executed --
            # so a failed launch degrades to the single-process path.
            if backend is not None:
                try:
                    backend.shutdown()
                except Exception:  # pragma: no cover - best effort
                    pass
            self._mode = "local"
            self.fallback_reason = f"worker launch failed: {exc}"
            return
        self._backend = backend
        self._mode = "distributed"
        self._floors = floors
        # Base snapshot before any window: the common ancestor every
        # worker diverged from (see repro.parallel.mp.merge).
        self._base = capture_base(self._session)
        # The workers hold replicated copies of everything in the master
        # heap; from here on the master only coordinates.
        self._queue.clear()

    # -- execution ---------------------------------------------------------
    def run(self, until: float = inf, max_events: int | None = None) -> float:
        if self._mode == "distributed":
            if max_events is not None:
                raise RuntimeError(
                    "mp-conservative: a max_events budget cannot be applied "
                    "after distributed execution has started -- budgeted runs "
                    "must pass max_events on the first run/step, which keeps "
                    "the whole run single-process"
                )
            return self._run_distributed(until)
        if self._mode is None:
            if max_events is not None:
                self._mode = "local"
                self.fallback_reason = (
                    "max_events budget: the event-count stop condition is "
                    "global, so budgeted runs execute single-process"
                )
            else:
                self._launch()
        if self._mode == "local":
            return super().run(until=until, max_events=max_events)
        return self._run_distributed(until)

    def _global_floor(self) -> float:
        """Minimum of worker floors and held (in-transit) event times."""
        floor = min(self._floors) if self._floors else inf
        for events in self._held_events:
            for ev in events:
                if ev.time < floor:
                    floor = ev.time
        return floor

    def _run_distributed(self, until: float) -> float:
        if self._backend is None:
            raise RuntimeError(
                "mp-conservative: workers have been shut down; the "
                "distributed run cannot be resumed"
            )
        be = self._backend
        n = self.n_partitions
        try:
            while True:
                floor = self._global_floor()
                if floor == inf or floor > until:
                    break
                window_end = floor + self.lookahead
                self.windows_executed += 1
                for p in range(n):
                    be.send(
                        p,
                        ("window", window_end, until,
                         self._held_events[p], self._held_opens[p]),
                    )
                    self._held_events[p] = []
                    self._held_opens[p] = []
                window_total = 0
                newest = self.now
                for p in range(n):
                    _tag, counted, outbox, opens, next_floor, w_now = be.recv(p)
                    for dst_part, events in outbox.items():
                        self._held_events[dst_part].extend(events)
                    for dst_part, records in opens.items():
                        self._held_opens[dst_part].extend(records)
                    self._floors[p] = next_floor
                    self.committed_by_partition[p] += counted
                    window_total += counted
                    if w_now > newest:
                        newest = w_now
                self.events_processed += window_total
                if window_total > self.max_window_events:
                    self.max_window_events = window_total
                self.now = newest
            if self.now < until < inf:
                self.now = until
            self._collect()
        except WorkerFailure:
            # The backend already tore the remaining workers down.
            self._backend = None
            raise
        self._run_end_hooks()
        return self.now

    def _collect(self) -> None:
        be = self._backend
        for p in range(self.n_partitions):
            be.send(p, ("collect",))
        snaps = [be.recv(p)[1] for p in range(self.n_partitions)]
        merge_into_master(self._session, self._base, snaps, self._held_opens,
                          self._fired)

    def shutdown_workers(self) -> None:
        """Exit and reap the worker processes (idempotent).

        Called by the session at finalize; all state has been merged by
        then, so this only releases processes.  No-op for local runs.
        """
        be = self._backend
        self._backend = None
        if be is None:
            return
        try:
            for p in range(self.n_partitions):
                be.send(p, ("exit",))
            for p in range(self.n_partitions):
                be.recv(p)
        except Exception:  # pragma: no cover - workers already gone
            pass
        be.shutdown()


def mp_conservative_engine(
    topo: Any,
    config: NetworkConfig | None = None,
    partitions: int = 4,
    lookahead: float | None = None,
    backend: str = "mp",
) -> MpConservativeEngine:
    """An :class:`MpConservativeEngine` partitioned for ``topo``.

    Same contract as :func:`~repro.parallel.runtime.conservative_engine`
    (plan derivation, lookahead validation), plus transport selection:
    ``backend`` is one of ``"mp"`` (spawned processes, default),
    ``"inline"`` (in-process protocol emulation) or ``"mpi"``
    (mpi4py; requires the package and an ``mpiexec`` launch).
    """
    if backend not in MP_BACKENDS:
        raise PartitionError(
            f"unknown mp backend {backend!r}; expected one of {list(MP_BACKENDS)}"
        )
    if backend == "mpi" and not have_mpi4py():
        raise PartitionError(
            "backend 'mpi' requires mpi4py, which is not installed; "
            "use backend='mp' (default) or backend='inline'"
        )
    config = config or NetworkConfig()
    plan = plan_partitions(topo, partitions)
    engine = MpConservativeEngine(
        lookahead=resolve_lookahead(topo, config, plan, lookahead),
        n_partitions=partitions,
        partition_fn=plan,
        backend=backend,
    )
    engine.plan = plan
    return engine
