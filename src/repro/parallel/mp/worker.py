"""Worker side of the multi-process conservative engine.

A worker owns one partition of the LP plan.  It rebuilds the whole
model from the :class:`~repro.parallel.mp.recipe.ModelRecipe` (so LP
ids, sequence counters and RNG streams line up with every other
process), then services the master's request/reply protocol:

``("floor",)``
    -> ``("floor", t)`` -- earliest pending local event time.
``("window", window_end, until, events, opens)``
    -> ``("done", counted, outbox, opens, floor, now)`` -- register the
    delivered message-open records, absorb the delivered events, commit
    one YAWNS window, and return everything that crossed out of this
    partition during it.
``("collect",)``
    -> ``("state", snapshot)`` -- ship counters, bins, fabric totals and
    owned rank stats for the master's merge (non-destructive).
``("exit",)``
    -> ``("bye",)``.

The worker never sees a ``max_events`` budget: budgeted runs stay
single-process (see ``docs/engines.md``).
"""

from __future__ import annotations

import heapq
import pickle
from typing import Any

from repro.pdes.conservative import ConservativeEngine
from repro.pdes.event import Event

#: Control-plane event kinds every partition commits locally.  The
#: model is replicated, so each worker runs its own copy of the t=0
#: "start" (and any defensive "launch") and keeps only the fallout
#: destined for its partition; origin-scoped sequence counters advance
#: identically everywhere because ``schedule_fast`` counts *attempts*,
#: not accepted pushes.
REPLICATED_KINDS = frozenset({"start", "launch"})


class WorkerEngine(ConservativeEngine):
    """Conservative engine that keeps one partition and exports the rest.

    ``_push`` routing, in order:

    1. events for LPs in our partition -> local heap;
    2. replicated control kinds -> local heap (every worker runs them);
    3. events scheduled *by our own partition's execution* for a foreign
       LP -> outbox, after the usual lookahead contract check;
    4. everything else is dropped: it was scheduled during replicated
       control execution (or control-plane fan-out), and the partition
       that owns the destination schedules its own identical copy.
    """

    def __init__(self, lookahead: float, n_partitions: int, partition_fn, partition: int) -> None:
        super().__init__(lookahead, n_partitions=n_partitions, partition_fn=partition_fn)
        if not 0 <= partition < n_partitions:
            raise ValueError(f"partition {partition} out of range for {n_partitions} partitions")
        self.partition = partition
        self.outbox: list[Event] = []

    def _push(self, ev: Event) -> None:
        me = self.partition
        part = self._part_of_lp[ev.dst]
        if part == me or ev.kind in REPLICATED_KINDS:
            heapq.heappush(self._queue, (ev.time, ev.priority, ev.seq, ev))
            return
        if self._current_partition == me:
            if ev.time < ev.send_time + self.lookahead:
                raise RuntimeError(
                    f"lookahead violation: cross-partition event {ev!r} scheduled "
                    f"with delay {ev.time - ev.send_time:.3e} < lookahead "
                    f"{self.lookahead:.3e}"
                )
            self.outbox.append(ev)
        # else: dropped -- scheduled during replicated execution; the
        # destination's owner generates its own copy.

    def absorb(self, events: list[Event]) -> None:
        """Heap-push events delivered from other partitions."""
        q = self._queue
        for ev in events:
            heapq.heappush(q, (ev.time, ev.priority, ev.seq, ev))

    def drain_outbox(self) -> dict[int, list[Event]]:
        """Pop and return this window's exports, grouped by destination
        partition."""
        out: dict[int, list[Event]] = {}
        parts = self._part_of_lp
        for ev in self.outbox:
            out.setdefault(parts[ev.dst], []).append(ev)
        self.outbox = []
        return out


class WorkerSession:
    """One partition's model plus the request/reply protocol handler."""

    def __init__(self, recipe: Any, partition: int) -> None:
        from repro.parallel.mp.recipe import build_worker_model

        self.partition = partition
        self.session = build_worker_model(recipe, partition)
        self.engine: WorkerEngine = self.session.engine
        self.fabric = self.session.fabric
        self.mpi = self.session.mpi
        self.part_of_node = self.engine.plan.part_of_node
        #: Message-open records created this window, grouped by the
        #: destination node's partition: (msg_id, size, meta, app_id, dst_node).
        self._opens: dict[int, list[tuple]] = {}
        #: msg_ids of in-progress sends whose destination is foreign;
        #: their local bookkeeping entry is purged once injection ends.
        self._foreign_out: set[int] = set()
        self._wrap_fabric()

    def _wrap_fabric(self) -> None:
        """Intercept the two fabric calls that straddle partitions.

        ``send_message``: when the destination node lives elsewhere, the
        destination partition needs the message's reassembly entry
        before any of its packets arrive.  We record an *open* -- the
        entry's plain-data fields -- and the master delivers it with the
        next window.  The meta tuple's send-side ``Request`` (slot 6) is
        blanked: it holds the sender's live rank state, which never
        leaves this process, and the delivery path only reads slots 0-5.

        ``on_message_injected``: once the NIC finishes injecting a
        foreign-destination message, the local entry has served its
        send-side purpose; purging it keeps the in-flight merge from
        double-counting the message (the destination partition and the
        master-held opens track it from here).
        """
        fabric = self.fabric
        part_of_node = self.part_of_node
        me = self.partition
        opens = self._opens
        foreign = self._foreign_out
        orig_send = fabric.send_message
        orig_injected = fabric.on_message_injected

        def send_message(app_id: int, src_node: int, dst_node: int, size: int, meta=None) -> int:
            msg_id = orig_send(app_id, src_node, dst_node, size, meta)
            if src_node != dst_node and part_of_node[dst_node] != me:
                wire = (
                    meta[:6] + (None,)
                    if isinstance(meta, tuple) and len(meta) == 7
                    else meta
                )
                opens.setdefault(part_of_node[dst_node], []).append(
                    (msg_id, size, wire, app_id, dst_node)
                )
                foreign.add(msg_id)
            return msg_id

        def on_message_injected(msg_id: int, time: float) -> None:
            orig_injected(msg_id, time)
            if msg_id in foreign:
                foreign.discard(msg_id)
                fabric._msgs.pop(msg_id, None)

        fabric.send_message = send_message
        fabric.on_message_injected = on_message_injected

    def _register_opens(self, opens: list[tuple]) -> None:
        from repro.network.fabric import _MsgState

        msgs = self.fabric._msgs
        for msg_id, size, meta, app_id, dst_node in opens:
            msgs[msg_id] = _MsgState(size, meta, app_id, dst_node)

    def _drain_opens(self) -> dict[int, list[tuple]]:
        out = dict(self._opens)
        self._opens.clear()
        return out

    def handle(self, msg: tuple) -> tuple:
        tag = msg[0]
        eng = self.engine
        if tag == "floor":
            return ("floor", eng.pending_floor())
        if tag == "window":
            _tag, window_end, until, events, opens = msg
            # Opens first: a crossing packet executes no earlier than the
            # window after its open record shipped, so registering before
            # absorbing keeps reassembly lookups safe.
            self._register_opens(opens)
            eng.absorb(events)
            eng.windows_executed += 1
            before = eng.committed_by_partition[self.partition]
            committed, _ = eng.commit_window(window_end, until)
            eng.events_processed += committed
            if committed > eng.max_window_events:
                eng.max_window_events = committed
            # Only commits charged to our own partition count toward the
            # global total -- replicated control commits are charged to
            # partition 0 and counted once, by partition 0's worker.
            counted = eng.committed_by_partition[self.partition] - before
            return (
                "done",
                counted,
                eng.drain_outbox(),
                self._drain_opens(),
                eng.pending_floor(),
                eng.now,
            )
        if tag == "collect":
            from repro.parallel.mp.merge import snapshot_worker

            return ("state", snapshot_worker(self))
        if tag == "exit":
            return ("bye",)
        raise ValueError(f"unknown mp protocol message {tag!r}")


def worker_main(conn, blob: bytes, partition: int) -> None:
    """Process entry point for the ``mp`` backend (spawn context).

    Builds the model, acknowledges with ``("ready", partition)`` and then
    serves requests until ``exit`` or EOF.  Any exception is reported as
    an ``("error", text)`` reply so the master can fail loudly instead
    of hanging.
    """
    try:
        ws = WorkerSession(pickle.loads(blob), partition)
    except BaseException as exc:  # noqa: BLE001 - must reach the master
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        finally:
            conn.close()
        return
    conn.send(("ready", partition))
    while True:
        try:
            msg = conn.recv()
        except EOFError:
            break
        try:
            reply = ws.handle(msg)
        except BaseException as exc:  # noqa: BLE001 - must reach the master
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            finally:
                conn.close()
            return
        conn.send(reply)
        if reply[0] == "bye":
            break
    conn.close()


def mpi_worker_loop() -> None:  # pragma: no cover - requires mpi4py + mpiexec
    """Request/reply loop for nonzero MPI ranks (``backend="mpi"``).

    Launch as ``mpiexec -n <partitions + 1> python your_driver.py`` with
    the driver calling :func:`mpi_worker_loop` on every rank except 0;
    rank 0 runs the normal session code with ``backend="mpi"``.
    """
    from mpi4py import MPI

    comm = MPI.COMM_WORLD
    ws = None
    while True:
        msg = comm.recv(source=0, tag=1)
        tag = msg[0]
        if tag == "build":
            _tag, blob, partition = msg
            try:
                ws = WorkerSession(pickle.loads(blob), partition)
            except BaseException as exc:  # noqa: BLE001
                comm.send(("error", f"{type(exc).__name__}: {exc}"), dest=0, tag=2)
                return
            comm.send(("ready", partition), dest=0, tag=2)
            continue
        if tag == "exit":
            comm.send(("bye",), dest=0, tag=2)
            return
        try:
            reply = ws.handle(msg)
        except BaseException as exc:  # noqa: BLE001
            comm.send(("error", f"{type(exc).__name__}: {exc}"), dest=0, tag=2)
            return
        comm.send(reply, dest=0, tag=2)
