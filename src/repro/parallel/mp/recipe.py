"""Model recipes: how a worker process rebuilds the simulation.

``repro.parallel.mp`` runs *replicated-model SPMD*: instead of
serializing live LP state (routers hold engine references, ranks hold
running generators -- none of it pickles, none of it should), the master
ships every worker a small declarative :class:`ModelRecipe` and each
worker rebuilds the full ``WorkloadManager`` stack from it.  Replicated
construction plus origin-scoped sequence numbers keeps all processes'
event-id spaces aligned without any cross-process coordination.

Not every model is expressible as a recipe.  :func:`extract_recipe`
checks a built :class:`~repro.union.session.SimulationSession` against
the eligibility rules below and returns either a pickled recipe or the
reason distribution is impossible; the ``mp-conservative`` engine turns
that reason into a clean single-process fallback (see
``docs/engines.md``):

* the session policy must be scripted (no step-time intervention);
* every job must be static: arrival 0, no per-job placement override,
  routing given as a table name (or inherited);
* no fault plan and no storage subsystem (their schedules and hooks
  hold closures over live state);
* manager routing/placement must be named strategies, not instances;
* the assembled recipe must actually pickle (translator-produced
  skeleton programs may close over arbitrary state).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from repro.union.session import SimulationSession


@dataclass(frozen=True)
class ModelRecipe:
    """Everything a worker needs to rebuild the model from scratch.

    ``topo`` is shipped as the constructed topology object (topologies
    are plain data and pickle cleanly); jobs are the manager's
    :class:`~repro.union.manager.Job` specs, untouched.  ``lookahead``
    is the master's *resolved* value so workers never re-derive it.
    """

    topo: Any
    config: Any
    routing: str
    placement: str
    seed: int
    counter_window: float
    jobs: tuple
    partitions: int
    lookahead: float
    telemetry_enable: tuple
    telemetry_disable: tuple


def extract_recipe(session: "SimulationSession") -> tuple[bytes | None, str | None]:
    """Distill a built session into a pickled recipe, or explain why not.

    Returns ``(blob, None)`` when the model is distributable and
    ``(None, reason)`` otherwise.  The reason strings surface verbatim
    as ``engine.fallback_reason``, so they are written for users.
    """
    mgr = session.manager
    policy = getattr(session, "policy", None)
    if policy is not None and (
        not getattr(policy, "scripted", True) or policy.name != "scripted"
    ):
        return None, (
            f"session policy {policy.name!r} may intervene at run time; "
            "only the scripted baseline distributes"
        )
    if getattr(mgr, "faults", None):
        return None, "fault plans replay live engine state and cannot be distributed"
    if getattr(mgr, "storage_nodes", None):
        return None, "the storage subsystem uses message hooks and cannot be distributed"
    if not isinstance(mgr.routing, str):
        return None, f"manager routing must be a named strategy, got {type(mgr.routing).__name__}"
    if not isinstance(mgr.placement, str):
        return None, f"manager placement must be a named strategy, got {type(mgr.placement).__name__}"
    for job in mgr.jobs:
        if job.arrival > 0:
            return None, f"job {job.name!r} arrives at t={job.arrival:g}; only static (t=0) jobs distribute"
        if job.placement is not None:
            return None, f"job {job.name!r} carries a per-job placement override"
        if job.routing is not None and not isinstance(job.routing, str):
            return None, f"job {job.name!r} routing must be a table name, got {type(job.routing).__name__}"
    engine = session.engine
    recipe = ModelRecipe(
        topo=mgr.topo,
        config=mgr.config,
        routing=mgr.routing,
        placement=mgr.placement,
        seed=mgr.seed,
        counter_window=mgr.counter_window,
        jobs=tuple(mgr.jobs),
        partitions=engine.n_partitions,
        lookahead=engine.lookahead,
        telemetry_enable=tuple(mgr.telemetry._enable),
        telemetry_disable=tuple(mgr.telemetry._disable),
    )
    try:
        blob = pickle.dumps(recipe, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        return None, f"model does not pickle: {exc}"
    return blob, None


def build_worker_model(recipe: ModelRecipe, partition: int):
    """Rebuild the full simulation stack for one partition.

    Runs inside the worker process (or inline, for the ``inline``
    backend).  The resulting session drives a
    :class:`~repro.parallel.mp.worker.WorkerEngine` whose heap holds the
    replicated control events plus everything destined for ``partition``.
    """
    from repro.parallel.mp.worker import WorkerEngine
    from repro.parallel.partition import plan_partitions
    from repro.telemetry.session import Telemetry
    from repro.union.manager import WorkloadManager

    plan = plan_partitions(recipe.topo, recipe.partitions)
    engine = WorkerEngine(
        recipe.lookahead,
        n_partitions=recipe.partitions,
        partition_fn=plan,
        partition=partition,
    )
    engine.plan = plan
    telemetry = Telemetry(
        enable=recipe.telemetry_enable, disable=recipe.telemetry_disable
    )
    mgr = WorkloadManager(
        recipe.topo,
        config=recipe.config,
        routing=recipe.routing,
        placement=recipe.placement,
        seed=recipe.seed,
        counter_window=recipe.counter_window,
        telemetry=telemetry,
        engine=engine,
    )
    for job in recipe.jobs:
        mgr.add_job(job)
    session = mgr.session()
    session.build()
    return session
