"""``repro.parallel.mp``: true multi-process partitioned execution.

The rest of :mod:`repro.parallel` *emulates* a partitioned YAWNS run
inside one process; this package actually distributes it.  Each LP
partition of a :func:`~repro.parallel.partition.plan_partitions` plan
runs in its own worker process with its own event heap; cross-partition
events are exchanged only at window boundaries, which the YAWNS
lookahead contract makes safe (anything sent during a window lands at
or after the window boundary).

Execution is *replicated-model SPMD*: every worker rebuilds the full
network/MPI stack from one pickled :class:`~repro.parallel.mp.recipe.
ModelRecipe` and then commits only its own partition's events, so no
live LP state ever crosses a process boundary -- only events, message
open records and end-of-step state snapshots do.  Sequence numbers are
origin-scoped (:meth:`repro.pdes.engine.Engine.schedule_fast`), so the
committed event order, the metrics and the scenario JSON are
bit-identical to a sequential run of the same model.

Modules:

* :mod:`repro.parallel.mp.recipe`   -- model recipes + eligibility
* :mod:`repro.parallel.mp.worker`   -- worker engine and protocol loop
* :mod:`repro.parallel.mp.channels` -- mp / inline / mpi4py transports
* :mod:`repro.parallel.mp.merge`    -- state snapshots and master merge
* :mod:`repro.parallel.mp.engine`   -- the ``mp-conservative`` master

The execution model, the wire protocol and the fallback rules are
documented in ``docs/engines.md``.
"""

from repro.parallel.mp.engine import MpConservativeEngine, mp_conservative_engine
from repro.parallel.mp.channels import MP_BACKENDS, WorkerFailure, have_mpi4py

__all__ = [
    "MP_BACKENDS",
    "MpConservativeEngine",
    "WorkerFailure",
    "have_mpi4py",
    "mp_conservative_engine",
]
