"""Transport backends for the multi-process conservative engine.

Three interchangeable transports carry the master/worker protocol of
:mod:`repro.parallel.mp.worker`:

``mp`` (default)
    One spawned process per partition, talking over a
    :func:`multiprocessing.Pipe`.  Spawn (not fork) so workers rebuild
    the model from the recipe exactly the way an MPI rank would, and so
    behaviour matches across platforms.
``inline``
    The workers live in this process and every message still makes a
    pickle round trip.  Zero process overhead, full protocol coverage --
    this is what the fuzz harness and most tests drive, and it works
    where process spawning is impossible (daemonic pool workers).
``mpi``
    mpi4py rank 0 is the master, ranks ``1..partitions`` the workers.
    Selected at runtime; requires ``mpi4py`` in the environment and the
    driver to be launched under ``mpiexec`` (see
    :func:`repro.parallel.mp.worker.mpi_worker_loop`).

All backends share one failure philosophy: a worker that dies or errors
mid-protocol raises :class:`WorkerFailure` naming the partition -- the
run fails loudly, never hangs.
"""

from __future__ import annotations

import importlib.util
import multiprocessing
import pickle

MP_BACKENDS = ("mp", "inline", "mpi")

_POLL_INTERVAL = 0.2


class WorkerFailure(RuntimeError):
    """A worker process died or reported an error mid-protocol."""


def have_mpi4py() -> bool:
    """Whether the optional ``mpi`` backend can be selected at all."""
    return importlib.util.find_spec("mpi4py") is not None


class InlineBackend:
    """In-process workers with full pickle round trips.

    Every request and reply is serialized and deserialized, so recipe
    construction, event shipping and state snapshots are exercised
    exactly as the process backends exercise them -- only the process
    boundary is missing.
    """

    name = "inline"

    def __init__(self) -> None:
        self._workers: list = []
        self._pending: dict[int, bytes] = {}

    def launch(self, blob: bytes, partitions: int) -> None:
        from repro.parallel.mp.worker import WorkerSession

        # One independent unpickle per worker: separate model instances,
        # exactly as separate processes would build them.
        self._workers = [
            WorkerSession(pickle.loads(blob), p) for p in range(partitions)
        ]

    def send(self, p: int, msg: tuple) -> None:
        self._pending[p] = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)

    def recv(self, p: int) -> tuple:
        msg = pickle.loads(self._pending.pop(p))
        reply = self._workers[p].handle(msg)
        reply = pickle.loads(pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL))
        if reply[0] == "error":
            raise WorkerFailure(
                f"mp-conservative worker for partition {p} failed: {reply[1]}"
            )
        return reply

    def shutdown(self) -> None:
        self._workers = []
        self._pending.clear()


class MultiprocessingBackend:
    """Spawned worker processes over pipes (the ``mp`` default)."""

    name = "mp"

    def __init__(self) -> None:
        self._procs: list = []
        self._conns: list = []

    @property
    def processes(self) -> list:
        """Live worker process handles (test hook for failure injection)."""
        return list(self._procs)

    def launch(self, blob: bytes, partitions: int) -> None:
        from repro.parallel.mp.worker import worker_main

        ctx = multiprocessing.get_context("spawn")
        procs, conns = [], []
        try:
            for p in range(partitions):
                parent, child = ctx.Pipe()
                proc = ctx.Process(
                    target=worker_main,
                    args=(child, blob, p),
                    name=f"mp-conservative-{p}",
                    daemon=True,
                )
                proc.start()
                child.close()
                procs.append(proc)
                conns.append(parent)
            self._procs, self._conns = procs, conns
            for p in range(partitions):
                reply = self.recv(p)
                if reply[0] != "ready":
                    raise WorkerFailure(
                        f"mp-conservative worker for partition {p} sent "
                        f"{reply[0]!r} instead of the ready handshake"
                    )
        except BaseException:
            self._procs, self._conns = procs, conns
            self.shutdown()
            raise

    def send(self, p: int, msg: tuple) -> None:
        try:
            self._conns[p].send(msg)
        except (BrokenPipeError, OSError):
            self._died(p)

    def recv(self, p: int) -> tuple:
        conn = self._conns[p]
        proc = self._procs[p]
        while not conn.poll(_POLL_INTERVAL):
            if not proc.is_alive():
                self._died(p)
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            self._died(p)
        if reply[0] == "error":
            self.shutdown()
            raise WorkerFailure(
                f"mp-conservative worker for partition {p} failed: {reply[1]}"
            )
        return reply

    def _died(self, p: int) -> None:
        code = self._procs[p].exitcode
        self.shutdown()
        raise WorkerFailure(
            f"mp-conservative worker for partition {p} died mid-protocol "
            f"(exit code {code}); distributed run state is lost and the run "
            f"cannot continue"
        )

    def shutdown(self) -> None:
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._procs, self._conns = [], []


class MPIBackend:  # pragma: no cover - requires mpi4py + mpiexec
    """mpi4py transport: rank 0 masters ranks ``1..partitions``."""

    name = "mpi"

    def __init__(self) -> None:
        if not have_mpi4py():
            raise WorkerFailure(
                "backend 'mpi' requires mpi4py, which is not installed; "
                "use backend='mp' (default) or backend='inline'"
            )
        from mpi4py import MPI

        self._comm = MPI.COMM_WORLD
        self._partitions = 0

    def launch(self, blob: bytes, partitions: int) -> None:
        size = self._comm.Get_size()
        if size < partitions + 1:
            raise WorkerFailure(
                f"backend 'mpi' needs {partitions + 1} ranks (1 master + "
                f"{partitions} workers) but the communicator has {size}; "
                f"launch with e.g. mpiexec -n {partitions + 1}"
            )
        self._partitions = partitions
        for p in range(partitions):
            self._comm.send(("build", blob, p), dest=p + 1, tag=1)
        for p in range(partitions):
            reply = self.recv(p)
            if reply[0] != "ready":
                raise WorkerFailure(
                    f"mp-conservative worker for partition {p} sent "
                    f"{reply[0]!r} instead of the ready handshake"
                )

    def send(self, p: int, msg: tuple) -> None:
        self._comm.send(msg, dest=p + 1, tag=1)

    def recv(self, p: int) -> tuple:
        reply = self._comm.recv(source=p + 1, tag=2)
        if reply[0] == "error":
            raise WorkerFailure(
                f"mp-conservative worker for partition {p} failed: {reply[1]}"
            )
        return reply

    def shutdown(self) -> None:
        self._partitions = 0


def make_backend(name: str):
    """Build the named transport (one of :data:`MP_BACKENDS`)."""
    if name == "mp":
        return MultiprocessingBackend()
    if name == "inline":
        return InlineBackend()
    if name == "mpi":
        return MPIBackend()
    raise ValueError(f"unknown mp backend {name!r}; expected one of {list(MP_BACKENDS)}")
