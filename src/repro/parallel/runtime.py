"""Build partitioned conservative engines and expose their runtime stats.

:func:`conservative_engine` is the one entry point the registry, the
workload manager and the benchmarks share: topology in, ready-to-run
:class:`~repro.pdes.conservative.ConservativeEngine` out, with the
partition plan attached (``engine.plan``) and the lookahead derived
from the minimum cross-partition link latency unless the caller pins a
tighter one explicitly.  An explicit lookahead *wider* than the
topology supports is refused up front -- it would let the engine commit
windows the real link latencies cannot justify.

:func:`bind_engine_telemetry` publishes the engine's execution stats as
observable gauges under ``pdes.conservative.*`` (window count, window
width, per-partition committed events); evaluated at export time, they
cost nothing during simulation.  It is a no-op for unpartitioned
engines, so the fabric calls it unconditionally.
"""

from __future__ import annotations

from typing import Any

from repro.network.config import NetworkConfig
from repro.parallel.partition import (
    PartitionError,
    PartitionPlan,
    min_cross_partition_latency,
    plan_partitions,
)
from repro.pdes.conservative import ConservativeEngine


def conservative_engine(
    topo: Any,
    config: NetworkConfig | None = None,
    partitions: int = 4,
    lookahead: float | None = None,
    engine_cls: type[ConservativeEngine] = ConservativeEngine,
) -> ConservativeEngine:
    """A :class:`ConservativeEngine` partitioned for ``topo``.

    Parameters
    ----------
    topo:
        The fabric the engine will execute (any registered or duck-typed
        topology); partitioning is topology-aware, see
        :func:`~repro.parallel.partition.plan_partitions`.
    config:
        Link parameters the lookahead derives from (defaults to the
        paper's :class:`NetworkConfig` values -- pass the same config
        the fabric uses).
    partitions:
        Number of partitions.
    lookahead:
        Explicit lookahead override (seconds).  Must be positive and at
        most the minimum cross-partition link latency of the plan;
        ``None`` (the default) uses that minimum directly.
    engine_cls:
        The :class:`ConservativeEngine` subclass to instantiate (the
        accelerated engines reuse this plan/lookahead derivation with
        their own scheduler core).
    """
    config = config or NetworkConfig()
    plan = plan_partitions(topo, partitions)
    engine = engine_cls(
        lookahead=resolve_lookahead(topo, config, plan, lookahead),
        n_partitions=partitions,
        partition_fn=plan,
    )
    engine.plan = plan
    return engine


def resolve_lookahead(
    topo: Any,
    config: NetworkConfig,
    plan: PartitionPlan,
    lookahead: float | None = None,
) -> float:
    """Validate an explicit lookahead against ``plan``, or derive one.

    Shared by every partitioned-engine factory (in-process and
    :mod:`repro.parallel.mp`), so they agree on both the derived value
    and the refusal rules.
    """
    auto = min_cross_partition_latency(topo, config, plan)
    if auto is None:
        # Single partition: no link crosses, any positive lookahead is
        # safe.  Use the tightest link delay so window stats stay
        # meaningful rather than degenerating to one infinite window.
        auto = min(
            config.latency(c) + config.router_delay
            for c in {p.link_class for ports in topo.router_ports for p in ports}
        )
    if lookahead is None:
        return auto
    if lookahead <= 0:
        raise PartitionError(
            f"lookahead must be positive, got {lookahead:g}"
        )
    if lookahead > auto:
        raise PartitionError(
            f"explicit lookahead {lookahead:g}s exceeds the minimum "
            f"cross-partition link latency {auto:g}s of this "
            f"{plan.scheme}-partitioned plan ({plan.n_partitions} partitions); "
            "events crossing partitions would violate the YAWNS "
            f"contract -- use a lookahead <= {auto:g}"
        )
    return lookahead


def bind_engine_telemetry(engine: Any, telemetry: Any) -> None:
    """Publish a partitioned engine's stats as ``pdes.conservative.*``.

    Observable gauges (closures over the live engine), registered with
    ``replace=True`` so a fresh engine on a shared telemetry session
    supersedes a finished one, like every other fabric instrument.
    No-op unless ``engine`` is a :class:`ConservativeEngine`.
    """
    if not isinstance(engine, ConservativeEngine):
        return
    t = telemetry
    t.gauge("pdes.conservative.partitions", unit="partitions", replace=True,
            doc="LP partitions the engine executes over",
            fn=lambda: engine.n_partitions)
    t.gauge("pdes.conservative.window_width", unit="seconds", replace=True,
            doc="YAWNS window width (the lookahead)",
            fn=lambda: engine.lookahead)
    t.gauge("pdes.conservative.windows", unit="windows", replace=True,
            doc="lookahead windows executed",
            fn=lambda: engine.windows_executed)
    t.gauge("pdes.conservative.max_window_events", unit="events", replace=True,
            doc="events committed in the widest window",
            fn=lambda: engine.max_window_events)
    for p in range(engine.n_partitions):
        t.gauge(f"pdes.conservative.partition.{p}.committed", unit="events",
                replace=True, doc=f"events committed by partition {p}",
                fn=lambda p=p: engine.committed_by_partition[p])


__all__ = [
    "PartitionError",
    "PartitionPlan",
    "bind_engine_telemetry",
    "conservative_engine",
    "min_cross_partition_latency",
    "plan_partitions",
    "resolve_lookahead",
]
