"""The persistent worker: one warm interpreter draining the job queue.

:func:`worker_loop` is the sole code a service worker process runs --
a module-level function (picklable under the ``spawn`` start method)
that loops task-queue -> execute -> result-queue until it receives the
``None`` sentinel.  Workers stay alive between jobs, so every job
after the first skips interpreter start-up and module import cost
("warm interpreter" serving).

Protocol on the result queue (plain tuples, journal-free -- the parent
owns the journal):

* ``("start", worker_id, job_id, pid)`` -- picked a task up;
* ``("done", worker_id, job_id, cached)`` -- finished (result is in
  the shared on-disk cache);
* ``("error", worker_id, job_id, message)`` -- the scenario raised.

A worker that dies without reporting (SIGKILL, OOM) is detected by the
parent's monitor via its exit code; the checkpoint cursor it left under
``<state>/checkpoints/`` is what the requeued job resumes from.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any

from repro.service.api import execute_spec, parse_submission
from repro.service.cache import ResultCache


@dataclass
class WorkerTask:
    """One queued unit of work (picklable; self-contained spec)."""

    job_id: str
    digest: str
    #: Whether to pick up an existing checkpoint cursor first.
    resume: bool = False
    spec: dict[str, Any] = field(default_factory=dict)


def worker_loop(worker_id: int, tasks, results, state_dir: str,
                cache_dir: str, interval: float | None) -> None:
    """Drain ``tasks`` until the ``None`` sentinel arrives."""
    cache = ResultCache(cache_dir)
    checkpoints = os.path.join(state_dir, "checkpoints")
    while True:
        task = tasks.get()
        if task is None:
            break
        results.put(("start", worker_id, task.job_id, os.getpid()))
        try:
            spec = parse_submission(task.spec)
            _, cached = execute_spec(
                spec, cache,
                checkpoint_path=os.path.join(checkpoints,
                                             f"{task.job_id}.json"),
                interval=interval,
                resume=task.resume,
            )
        except Exception as exc:  # noqa: BLE001 - report, don't die
            results.put(("error", worker_id, task.job_id,
                         f"{type(exc).__name__}: {exc}"))
        else:
            results.put(("done", worker_id, task.job_id, cached))
