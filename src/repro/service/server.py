"""The long-lived simulation server: queue, pool, monitor, recovery.

:class:`SimulationServer` is :class:`~repro.service.api.SubmitAPI` with
execution pushed onto a persistent pool of ``spawn``-context worker
processes (warm interpreters; see :mod:`repro.service.worker`).  The
parent owns the journal and runs one monitor thread that

* applies worker reports (start/done/error) to the journal,
* detects **dead workers** (an exit code where none was expected --
  SIGKILL, OOM), respawns the slot, and requeues the job that was in
  flight with ``resume=True`` so it continues from its last checkpoint
  cursor instead of starting over (``max_attempts`` bounds the
  crash-requeue loop; a job that keeps killing workers fails loudly),
* enforces cancellation: a task whose journal entry was cancelled
  before a worker picked it up is killed at pick-up.

``recover()`` (called by :meth:`start`) re-enqueues every queued or
running journal entry left by a previous server process -- restarting
the server never loses accepted work.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import threading
from typing import Any

from repro.scenario import ScenarioSpec
from repro.service.api import SubmitAPI
from repro.service.jobs import JobRecord, JobState
from repro.service.worker import WorkerTask, worker_loop

#: How often (s) the monitor wakes to poll worker liveness.
_MONITOR_TICK = 0.1


class SimulationServer(SubmitAPI):
    """An async job queue over a persistent worker pool."""

    def __init__(
        self,
        state_dir,
        workers: int = 2,
        cache_dir=None,
        checkpoint_interval: float | None = None,
        max_attempts: int = 3,
        telemetry=None,
    ) -> None:
        super().__init__(state_dir, cache_dir=cache_dir,
                         checkpoint_interval=checkpoint_interval,
                         telemetry=telemetry)
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.n_workers = workers
        self.max_attempts = max_attempts
        # The spawn context keeps workers free of inherited engine/
        # telemetry state and is safe alongside the monitor thread.
        self._ctx = multiprocessing.get_context("spawn")
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._procs: list[Any] = [None] * workers
        #: Worker slot -> job_id currently in flight on it.
        self._in_flight: dict[int, str] = {}
        #: Respawns allowed for workers that die *idle* -- a worker
        #: that cannot even start (broken environment) must not turn
        #: the monitor into a fork bomb.  Deaths with a job in flight
        #: are bounded per job by ``max_attempts`` instead.
        self._idle_respawns = 3 * workers
        self._lock = threading.Lock()
        self._monitor: threading.Thread | None = None
        self._stopping = threading.Event()
        self._started = False

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "SimulationServer":
        """Spawn the pool, recover leftover jobs, start the monitor."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self.checkpoints_dir.mkdir(parents=True, exist_ok=True)
        for slot in range(self.n_workers):
            self._spawn(slot)
        self.recover()
        self._monitor = threading.Thread(target=self._monitor_loop,
                                         name="service-monitor", daemon=True)
        self._monitor.start()
        return self

    def stop(self, timeout: float = 10.0) -> None:
        """Drain nothing, stop everything: sentinel each worker, join,
        terminate stragglers, stop the monitor.  Queued jobs stay in
        the journal and are recovered on the next start."""
        if not self._started:
            return
        self._stopping.set()
        for _ in range(self.n_workers):
            self._tasks.put(None)
        for proc in self._procs:
            if proc is not None:
                proc.join(timeout=timeout / max(1, self.n_workers))
        for proc in self._procs:
            if proc is not None and proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        if self._monitor is not None:
            self._monitor.join(timeout=2.0)
        self._started = False

    def __enter__(self) -> "SimulationServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def recover(self) -> list[JobRecord]:
        """Re-enqueue every queued/running entry a dead server left.

        Entries that were ``running`` resume from their checkpoint
        cursor (when the worker lived long enough to write one); plain
        ``queued`` entries just go back on the queue.
        """
        recovered = []
        for record in self.store.recoverable():
            resume = (record.state is JobState.RUNNING
                      and self.checkpoint_path(record.job_id).is_file())
            record.state = JobState.QUEUED
            record.worker = record.pid = None
            self.store.save(record)
            self._tasks.put(WorkerTask(job_id=record.job_id,
                                       digest=record.digest,
                                       resume=resume, spec=record.spec))
            recovered.append(record)
        return recovered

    # -- SubmitAPI strategy overrides --------------------------------------
    def _dispatch(self, record: JobRecord, spec: ScenarioSpec) -> JobRecord:
        if not self._started:
            raise RuntimeError("server not started; call start() first")
        self._tasks.put(WorkerTask(job_id=record.job_id, digest=record.digest,
                                   spec=record.spec))
        return record

    def _on_cancel(self, record: JobRecord) -> None:
        """Kill the worker running a cancelled job (the slot respawns
        via the monitor's liveness pass; the job is *not* requeued)."""
        with self._lock:
            for slot, job_id in self._in_flight.items():
                if job_id == record.job_id:
                    proc = self._procs[slot]
                    if proc is not None and proc.is_alive():
                        proc.terminate()
                    break

    # -- pool internals ----------------------------------------------------
    def _spawn(self, slot: int) -> None:
        proc = self._ctx.Process(
            target=worker_loop,
            args=(slot, self._tasks, self._results, str(self.state_dir),
                  str(self.cache.root), self.checkpoint_interval),
            name=f"service-worker-{slot}",
            daemon=True,
        )
        proc.start()
        self._procs[slot] = proc

    def _monitor_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                msg = self._results.get(timeout=_MONITOR_TICK)
            except queue_mod.Empty:
                msg = None
            if msg is not None:
                self._apply(msg)
            self._reap_dead_workers()

    def _apply(self, msg: tuple) -> None:
        kind, slot, job_id = msg[0], msg[1], msg[2]
        try:
            record = self.store.load(job_id)
        except KeyError:  # pragma: no cover - journal wiped underneath
            return
        if kind == "start":
            if record.state is JobState.CANCELLED:
                # Cancelled while queued: the worker just picked it up;
                # kill the attempt (the slot respawns on the next tick).
                with self._lock:
                    self._in_flight[slot] = job_id
                proc = self._procs[slot]
                if proc is not None and proc.is_alive():
                    proc.terminate()
                return
            with self._lock:
                self._in_flight[slot] = job_id
            record.state = JobState.RUNNING
            record.attempts += 1
            record.worker = slot
            record.pid = msg[3]
            self.store.save(record)
        elif kind in ("done", "error"):
            with self._lock:
                self._in_flight.pop(slot, None)
            if record.state is JobState.CANCELLED:
                return  # finished anyway; keep the cancel verdict
            if kind == "done":
                record.state = JobState.DONE
                record.cached = bool(msg[3])
            else:
                record.state = JobState.FAILED
                record.error = msg[3]
            record.worker = record.pid = None
            self.store.save(record)

    def _reap_dead_workers(self) -> None:
        for slot, proc in enumerate(self._procs):
            if proc is None or proc.is_alive():
                continue
            if self._stopping.is_set():
                return
            with self._lock:
                job_id = self._in_flight.pop(slot, None)
            if job_id is None:
                if self._idle_respawns > 0:
                    self._idle_respawns -= 1
                    self._spawn(slot)
                else:
                    self._procs[slot] = None  # give up on this slot
                continue
            self._spawn(slot)
            try:
                record = self.store.load(job_id)
            except KeyError:  # pragma: no cover
                continue
            if record.state.terminal():
                continue  # cancelled (or raced to done): do not requeue
            note = (f"worker {slot} (pid {record.pid}) died with exit code "
                    f"{proc.exitcode} during attempt {record.attempts}")
            if record.attempts >= self.max_attempts:
                record.state = JobState.FAILED
                record.error = note + f"; giving up after {record.attempts} attempts"
                record.worker = record.pid = None
                self.store.save(record)
                continue
            resume = self.checkpoint_path(job_id).is_file()
            record.state = JobState.QUEUED
            record.error = note + ("; resuming from checkpoint" if resume
                                   else "; restarting from scratch")
            record.worker = record.pid = None
            self.store.save(record)
            self._tasks.put(WorkerTask(job_id=job_id, digest=record.digest,
                                       resume=resume, spec=record.spec))

    # -- introspection -----------------------------------------------------
    def stats(self) -> dict[str, Any]:
        out = super().stats()
        out["workers"] = {
            "configured": self.n_workers,
            "alive": sum(1 for p in self._procs
                         if p is not None and p.is_alive()),
            "busy": len(self._in_flight),
        }
        return out
