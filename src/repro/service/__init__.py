"""Simulation-as-a-service: persistent server, result cache, resume.

The serving layer the ROADMAP's "heavy traffic" north star asks for.
One CLI invocation per scenario does not scale to many concurrent
clients; :mod:`repro.service` turns the existing building blocks into a
long-lived service:

* :mod:`repro.service.cache`      -- content-addressed on-disk result
  store keyed on the canonical-TOML hash of the spec
  (:func:`spec_digest`), with hit/miss telemetry and stored-row replay
  into the caller's sinks;
* :mod:`repro.service.checkpoint` -- deterministic-replay checkpoints
  over the :class:`~repro.union.session.SimulationSession` step
  lifecycle, so killed workers resume mid-horizon jobs bit-identically
  (:func:`run_checkpointed` / :func:`resume_from_checkpoint`);
* :mod:`repro.service.api`        -- the in-process :class:`SubmitAPI`
  service layer (submit/status/result/cancel) that the server, the CLI
  client and tests all share, plus :func:`execute_spec`, the one
  cache-aware run path;
* :mod:`repro.service.jobs`       -- the journaled job store
  (:class:`JobRecord` / :class:`JobStore`), durable across restarts;
* :mod:`repro.service.server`     -- :class:`SimulationServer`, a
  persistent worker pool (warm interpreters, spawn context) behind an
  async job queue with dead-worker detection and checkpoint resume;
* :mod:`repro.service.http`       -- the stdlib HTTP transport
  (``union-sim serve``) and :mod:`repro.service.client` -- the urllib
  client (``union-sim submit`` / ``union-sim jobs``).

See ``docs/service.md`` for the server model, cache keying and the
checkpoint format + compatibility policy.
"""

from repro.service.api import ServiceError, SubmitAPI, execute_spec
from repro.service.cache import CacheEntry, ResultCache, cache_mapping, spec_digest
from repro.service.checkpoint import (
    CHECKPOINT_FORMAT,
    CheckpointError,
    checkpoint_boundaries,
    load_checkpoint,
    resume_from_checkpoint,
    run_checkpointed,
)
from repro.service.jobs import JobRecord, JobState, JobStore
from repro.service.server import SimulationServer

__all__ = [
    "CHECKPOINT_FORMAT",
    "CacheEntry",
    "CheckpointError",
    "JobRecord",
    "JobState",
    "JobStore",
    "ResultCache",
    "ServiceError",
    "SimulationServer",
    "SubmitAPI",
    "cache_mapping",
    "checkpoint_boundaries",
    "execute_spec",
    "load_checkpoint",
    "resume_from_checkpoint",
    "run_checkpointed",
    "spec_digest",
]
