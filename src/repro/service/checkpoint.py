"""Checkpoint/resume for in-flight scenario runs.

A live session is not picklable -- rank programs are generator
coroutines, arrival factories are closures, observable gauges hold
lambdas -- so this module does **not** snapshot engine state.  It
exploits two properties the test suite already pins:

* the engines' *stepping-parity* contract (``step(t1); step(t2)``
  commits the identical event sequence as one ``step(t2)``), and
* the *determinism* fuzz invariant (the identical spec always produces
  the identical run).

A checkpoint is therefore a **replay cursor**: the full spec mapping
plus the index of the last committed step boundary.  Resuming rebuilds
the session from the spec, replays the same boundaries up to the
cursor, verifies the engine's committed-event count matches the one
recorded at checkpoint time (the determinism guard -- a divergent
replay fails loudly instead of producing silently different results),
and steps on to the horizon.  By stepping-parity the finished run is
bit-identical to an uninterrupted one; ``checkpoint_resume`` in
:mod:`repro.fuzz.invariants` fuzzes exactly that claim.

Checkpoint files are JSON with a versioned ``format`` tag
(:data:`CHECKPOINT_FORMAT`); see ``docs/service.md`` for the format and
its compatibility policy (unknown versions are rejected, never
guessed).  Writes are atomic (temp file + ``os.replace``) so a worker
killed mid-write leaves the previous checkpoint intact.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any

from repro.scenario import ScenarioSpec, parse_scenario, to_toml
from repro.scenario.runner import (
    ScenarioResult,
    build_manager,
    reduce_scenario_result,
)

#: Versioned checkpoint format tag.  Bump on any incompatible change to
#: the file's keys or replay semantics; loaders reject unknown tags.
CHECKPOINT_FORMAT = "union-sim/checkpoint/v1"

#: Keys every v1 checkpoint file carries (``docs/service.md`` documents
#: each one; ``scripts/check_docs.py`` enforces that).
CHECKPOINT_KEYS = ("format", "spec", "horizon", "interval",
                   "committed_index", "committed_time", "events")


class CheckpointError(RuntimeError):
    """A checkpoint file that cannot be trusted (bad format, spec
    mismatch, or a replay that diverged from the recorded run)."""


def checkpoint_boundaries(horizon: float, interval: float | None) -> list[float]:
    """The absolute step boundaries one checkpointed run commits.

    Multiples of ``interval`` strictly inside the horizon, then the
    horizon itself -- so the boundary list always ends exactly at the
    horizon and a disabled/oversized interval degrades to a single
    monolithic step.  Both the fresh run and every resume derive their
    schedule from this one function; that shared schedule is what makes
    replay exact.
    """
    if interval is None or interval <= 0.0 or interval >= horizon:
        return [horizon]
    out: list[float] = []
    k = 1
    while k * interval < horizon:
        out.append(k * interval)
        k += 1
    out.append(horizon)
    return out


def _write_checkpoint(path: Path, payload: dict[str, Any]) -> None:
    assert set(payload) == set(CHECKPOINT_KEYS)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=f".{path.name}.")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except Exception:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def load_checkpoint(path: "str | os.PathLike") -> dict[str, Any]:
    """Read and format-check one checkpoint file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from None
    fmt = data.get("format")
    if fmt != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"checkpoint {path} has format {fmt!r}; this build reads "
            f"{CHECKPOINT_FORMAT!r} only (checkpoints are replay cursors, "
            "not migratable state -- re-run the job)"
        )
    return data


def run_checkpointed(
    spec: ScenarioSpec,
    checkpoint_path: "str | os.PathLike | None" = None,
    interval: float | None = None,
    stop_after: int | None = None,
) -> ScenarioResult | None:
    """Run one scenario in checkpointed steps.

    Steps the session through :func:`checkpoint_boundaries`, writing
    the replay cursor to ``checkpoint_path`` after each committed
    boundary; the file is removed once the run finalizes (a finished
    job needs no resume).  By stepping-parity the result is
    bit-identical to :func:`~repro.scenario.runner.run_scenario`.

    ``stop_after=k`` abandons the run right after the ``k``-th
    checkpoint is written and returns ``None`` -- the deterministic
    stand-in for a worker killed mid-run, used by the fuzz invariant
    and the tests (the service's real SIGKILL path lands in the same
    on-disk state).
    """
    boundaries = checkpoint_boundaries(spec.horizon, interval)
    path = Path(checkpoint_path) if checkpoint_path is not None else None
    session = build_manager(spec).session()
    session.build()
    for i, until in enumerate(boundaries):
        session.step(until=until)
        at_horizon = i == len(boundaries) - 1
        if path is not None and not at_horizon:
            _write_checkpoint(path, {
                "format": CHECKPOINT_FORMAT,
                "spec": spec.to_dict(),
                "horizon": spec.horizon,
                "interval": interval,
                "committed_index": i,
                "committed_time": until,
                "events": session.engine.events_processed,
            })
            if stop_after is not None and i + 1 >= stop_after:
                return None
    result = reduce_scenario_result(spec, session.finalize())
    if path is not None and path.exists():
        path.unlink()
    return result


def resume_from_checkpoint(path: "str | os.PathLike") -> ScenarioResult:
    """Finish the run a checkpoint describes, bit-identically.

    Rebuilds the session from the stored spec, replays the recorded
    step boundaries up to the cursor, verifies the committed-event
    count against the checkpoint (raising :class:`CheckpointError` on
    divergence -- a changed catalog, seed handling or engine would make
    "resume" silently mean "different run"), then keeps checkpointing
    through the remaining boundaries and finalizes.
    """
    path = Path(path)
    data = load_checkpoint(path)
    mapping = data["spec"]
    spec = parse_scenario(mapping, name=mapping.get("name", "resumed"))
    boundaries = checkpoint_boundaries(data["horizon"], data["interval"])
    cursor = int(data["committed_index"])
    if not 0 <= cursor < len(boundaries) - 1 or \
            boundaries[cursor] != data["committed_time"]:
        raise CheckpointError(
            f"checkpoint {path} cursor (index {cursor} at "
            f"t={data['committed_time']!r}) does not lie on the boundary "
            f"schedule of horizon={data['horizon']!r} "
            f"interval={data['interval']!r}"
        )
    session = build_manager(spec).session()
    session.build()
    for until in boundaries[:cursor + 1]:
        session.step(until=until)
    replayed = session.engine.events_processed
    if replayed != data["events"]:
        raise CheckpointError(
            f"replay diverged: {replayed} events committed at "
            f"t={data['committed_time']!r} but the checkpoint recorded "
            f"{data['events']} -- the code or environment changed since "
            "the checkpoint was written; re-run the job from scratch"
        )
    for i, until in enumerate(boundaries[cursor + 1:], start=cursor + 1):
        if i < len(boundaries) - 1:
            # Keep the cursor fresh: a resume can itself be killed.
            session.step(until=until)
            _write_checkpoint(path, {**data, "committed_index": i,
                                     "committed_time": until,
                                     "events": session.engine.events_processed})
        else:
            session.step(until=until)
    result = reduce_scenario_result(spec, session.finalize())
    if path.exists():
        path.unlink()
    return result


def checkpoint_spec_toml(data: dict[str, Any]) -> str:
    """The stored spec as canonical TOML (debugging/repro convenience)."""
    mapping = data["spec"]
    return to_toml(parse_scenario(mapping, name=mapping.get("name", "resumed")))
