"""The urllib client for a running ``union-sim serve`` endpoint.

:class:`ServiceClient` mirrors the :class:`~repro.service.api.SubmitAPI`
surface one-for-one over HTTP (submit/status/result/telemetry/cancel/
jobs/stats/wait), returning the same plain dicts the server journals --
the CLI (``union-sim submit`` / ``union-sim jobs``) and the smoke tests
are both thin layers over this class.  Stdlib only (urllib), no
sessions, no dependencies.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.service.api import ServiceError

#: Default endpoint ``union-sim serve`` binds and the clients assume.
DEFAULT_SERVER = "http://127.0.0.1:7321"


class ServiceClient:
    """Talk to one ``union-sim serve`` endpoint."""

    def __init__(self, url: str = DEFAULT_SERVER, timeout: float = 30.0) -> None:
        self.url = url.rstrip("/")
        self.timeout = timeout

    def _request(self, method: str, path: str,
                 body: Mapping[str, Any] | None = None) -> Any:
        req = urllib.request.Request(self.url + path, method=method)
        data = None
        if body is not None:
            data = json.dumps(dict(body)).encode("utf-8")
            req.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(req, data=data,
                                        timeout=self.timeout) as resp:
                raw = resp.read().decode("utf-8")
                ctype = resp.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            try:
                message = json.loads(exc.read().decode("utf-8"))["error"]
            except Exception:  # noqa: BLE001 - error body is best-effort
                message = str(exc)
            raise ServiceError(f"{method} {path}: {message}") from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.url}: {exc.reason} "
                "(is `union-sim serve` running?)") from None
        if ctype.startswith("application/jsonl"):
            return raw
        return json.loads(raw)

    # -- the mirrored surface ---------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def stats(self) -> dict[str, Any]:
        return self._request("GET", "/stats")

    def submit(self, spec: Mapping[str, Any]) -> dict[str, Any]:
        """Submit one scenario mapping; returns its job record dict."""
        return self._request("POST", "/jobs", body={"spec": dict(spec)})

    def jobs(self) -> list[dict[str, Any]]:
        return self._request("GET", "/jobs")["jobs"]

    def status(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def telemetry_jsonl(self, job_id: str) -> str:
        return self._request("GET", f"/jobs/{job_id}/telemetry")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 120.0,
             poll: float = 0.1) -> dict[str, Any]:
        """Block until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after {timeout:g}s")
            time.sleep(poll)
