"""The service layer proper: one cache-aware run path, one submit API.

:func:`execute_spec` is the single place a scenario is executed on
behalf of the service -- the worker pool, the in-process
:class:`SubmitAPI` and the tests all funnel through it, so cache
keying, telemetry capture/replay and checkpoint placement cannot drift
between transports:

* **hit**: return the stored result document and *replay* the stored
  unfiltered telemetry rows into the spec's own ``[metrics]`` sinks
  (JSONL path, filter globs) -- the fix for the harness-cache flaw
  where a hit silently produced no row stream;
* **miss**: run the scenario through
  :func:`~repro.service.checkpoint.run_checkpointed` (checkpointing
  when asked, or resuming an existing cursor), capture the full
  unfiltered row stream, and store spec text + result + rows.

:class:`SubmitAPI` is the transport-free service surface
(submit/status/result/cancel/stats over a :class:`JobStore` +
:class:`ResultCache`).  It executes submissions synchronously in
process -- tests and library callers get real service semantics with
zero moving parts -- while :class:`~repro.service.server.SimulationServer`
subclasses it to push execution onto the persistent worker pool.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Mapping

from repro.scenario import ScenarioError, ScenarioSpec, parse_scenario, to_toml
from repro.service.cache import ResultCache, spec_digest
from repro.service.checkpoint import resume_from_checkpoint, run_checkpointed
from repro.service.jobs import JobRecord, JobState, JobStore
from repro.telemetry import JsonlSink, MemorySink


class ServiceError(RuntimeError):
    """A service-level request error (unknown job, bad spec...)."""


def _drive_spec_sinks_from_entry(spec: ScenarioSpec, entry) -> None:
    """Replay a cache entry's rows into the spec's ``[metrics]`` JSONL
    sink, exactly as a live run would have written it.  The embedded
    summary needs no replay -- it is part of the stored result
    document (``summary`` is in the digest, so hit and miss agree on
    it)."""
    m = spec.metrics
    if m is not None and m.jsonl:
        meta = {"scenario": spec.name, "seed": spec.seed,
                "horizon": spec.horizon}
        entry.replay(JsonlSink(m.jsonl), m.filter or None, meta=meta)


def execute_spec(
    spec: ScenarioSpec,
    cache: ResultCache | None = None,
    checkpoint_path: "str | os.PathLike | None" = None,
    interval: float | None = None,
    resume: bool = False,
) -> tuple[dict[str, Any], bool]:
    """Run (or fetch) one scenario; returns ``(result_json, cached)``.

    ``resume`` finishes an existing checkpoint at ``checkpoint_path``
    first if one exists (a requeued job whose worker died); a missing
    file silently degrades to a fresh run -- the worker may have died
    before its first checkpoint.
    """
    digest = spec_digest(spec)
    if cache is not None:
        entry = cache.get(digest)
        if entry is not None:
            _drive_spec_sinks_from_entry(spec, entry)
            return entry.result(), True
    if resume and checkpoint_path is not None and Path(checkpoint_path).is_file():
        result = resume_from_checkpoint(checkpoint_path)
    else:
        result = run_checkpointed(spec, checkpoint_path, interval)
    assert result is not None  # stop_after is not part of the service path
    doc = result.to_json_dict()
    if cache is not None:
        telemetry = result.telemetry
        assert telemetry is not None
        sink = telemetry.export(MemorySink(), None, meta={
            "scenario": spec.name, "seed": spec.seed, "horizon": spec.horizon,
        })
        cache.put(digest, to_toml(spec), doc, sink.rows, sink.header)
    return doc, False


def parse_submission(spec: "ScenarioSpec | Mapping[str, Any]",
                     name: str | None = None) -> ScenarioSpec:
    """Validate one submission through the real scenario parser."""
    if isinstance(spec, ScenarioSpec):
        return spec
    try:
        mapping = dict(spec)
        return parse_scenario(mapping,
                              name=name or mapping.get("name", "submitted"))
    except ScenarioError:
        raise
    except (TypeError, ValueError) as exc:
        raise ScenarioError(f"submission is not a scenario mapping: {exc}") \
            from None


class SubmitAPI:
    """Submit/status/result/cancel over a journal and a result cache.

    ``state_dir`` holds the journal (``jobs/``) and checkpoint cursors
    (``checkpoints/``); ``cache_dir`` defaults to ``<state_dir>/cache``.
    This base class executes synchronously at :meth:`submit` time; the
    server overrides :meth:`_dispatch` to enqueue instead.
    """

    def __init__(
        self,
        state_dir: "str | os.PathLike",
        cache_dir: "str | os.PathLike | None" = None,
        checkpoint_interval: float | None = None,
        telemetry=None,
    ) -> None:
        self.state_dir = Path(state_dir)
        self.store = JobStore(self.state_dir)
        self.cache = ResultCache(
            Path(cache_dir) if cache_dir is not None
            else self.state_dir / "cache",
            telemetry=telemetry,
        )
        self.checkpoint_interval = checkpoint_interval
        self.checkpoints_dir = self.state_dir / "checkpoints"

    # -- the surface ------------------------------------------------------
    def submit(self, spec: "ScenarioSpec | Mapping[str, Any]") -> JobRecord:
        """Accept one spec; returns its (possibly already-done) record.

        A spec whose digest is already cached completes instantly
        (``state == done``, ``cached=True``) without touching a worker
        -- the submit-time probe counts as a cache hit.
        """
        parsed = parse_submission(spec)
        digest = spec_digest(parsed)
        record = self.store.new_job(digest, parsed.name, parsed.to_dict())
        entry = self.cache.get(digest)
        if entry is not None:
            _drive_spec_sinks_from_entry(parsed, entry)
            record.state = JobState.DONE
            record.cached = True
            self.store.save(record)
            return record
        return self._dispatch(record, parsed)

    def status(self, job_id: str) -> JobRecord:
        try:
            return self.store.load(job_id)
        except KeyError as exc:
            raise ServiceError(str(exc)) from None

    def result(self, job_id: str) -> dict[str, Any]:
        """The finished job's result document (from the cache)."""
        record = self.status(job_id)
        if record.state is not JobState.DONE:
            raise ServiceError(
                f"job {job_id} is {record.state.value}, not done"
                + (f": {record.error}" if record.error else "")
            )
        entry = self.cache.get(record.digest)
        if entry is None:  # pragma: no cover - cache dir deleted underneath
            raise ServiceError(f"job {job_id} result evicted from cache")
        return entry.result()

    def telemetry_jsonl(self, job_id: str) -> str:
        """The finished job's stored row stream as JSONL text."""
        record = self.status(job_id)
        if record.state is not JobState.DONE:
            raise ServiceError(f"job {job_id} is {record.state.value}, not done")
        entry = self.cache.get(record.digest)
        if entry is None:  # pragma: no cover - cache dir deleted underneath
            raise ServiceError(f"job {job_id} telemetry evicted from cache")
        return (entry.path / "telemetry.jsonl").read_text()

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel a queued/running job; terminal jobs are left alone."""
        record = self.status(job_id)
        if not record.state.terminal():
            record.state = JobState.CANCELLED
            self.store.save(record)
            self._on_cancel(record)
        return record

    def jobs(self) -> list[JobRecord]:
        return self.store.list()

    def wait(self, job_id: str, timeout: float = 60.0,
             poll: float = 0.05) -> JobRecord:
        """Block until the job reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            record = self.status(job_id)
            if record.state.terminal():
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record.state.value} after "
                    f"{timeout:g}s")
            time.sleep(poll)

    def stats(self) -> dict[str, Any]:
        return {"jobs": self.store.counts(), "cache": self.cache.stats()}

    # -- execution strategy (the server overrides these) -------------------
    def checkpoint_path(self, job_id: str) -> Path:
        return self.checkpoints_dir / f"{job_id}.json"

    def _dispatch(self, record: JobRecord, spec: ScenarioSpec) -> JobRecord:
        """Run synchronously in process (the library-mode strategy)."""
        record.state = JobState.RUNNING
        record.attempts += 1
        self.store.save(record)
        try:
            _, cached = execute_spec(
                spec, self.cache,
                checkpoint_path=self.checkpoint_path(record.job_id),
                interval=self.checkpoint_interval,
            )
        except Exception as exc:  # noqa: BLE001 - journal every failure
            record.state = JobState.FAILED
            record.error = f"{type(exc).__name__}: {exc}"
        else:
            record.state = JobState.DONE
            record.cached = cached
        self.store.save(record)
        return record

    def _on_cancel(self, record: JobRecord) -> None:
        """Hook for transports that must stop in-flight work."""
