"""The server's durable job journal.

One :class:`JobRecord` per submitted spec, persisted as a JSON file
under ``<state>/jobs/`` with atomic writes -- the journal *is* the
source of truth across server restarts: :meth:`JobStore.recoverable`
lists the queued/running entries a restarting server re-enqueues
(resuming from their checkpoints where one exists).

States form a tiny machine::

    queued -> running -> done
                      -> failed      (crashed too often, or raised)
    queued/running -> cancelled      (client asked)

``done`` records only the result *digest*; the result document itself
lives in the content-addressed cache, so the journal stays small and a
re-submitted spec shares its storage.
"""

from __future__ import annotations

import enum
import json
import os
import re
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping


class JobState(str, enum.Enum):
    """Lifecycle states of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class JobRecord:
    """One journal entry (plain data, JSON round-trip)."""

    job_id: str
    digest: str
    scenario: str
    state: JobState = JobState.QUEUED
    #: Result came straight from the cache, no simulation ran.
    cached: bool = False
    #: Times this job has been (re)started; bumped on crash-requeue.
    attempts: int = 0
    #: Last failure message (``state == failed``), or a crash note.
    error: str | None = None
    #: Worker slot and OS pid currently running the job (while running).
    worker: int | None = None
    pid: int | None = None
    #: The full validated spec mapping (self-contained: includes
    #: ``base_dir`` when the spec reads relative sources).
    spec: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "job_id": self.job_id,
            "digest": self.digest,
            "scenario": self.scenario,
            "state": self.state.value,
            "cached": self.cached,
            "attempts": self.attempts,
            "spec": dict(self.spec),
        }
        if self.error is not None:
            out["error"] = self.error
        if self.worker is not None:
            out["worker"] = self.worker
        if self.pid is not None:
            out["pid"] = self.pid
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        return cls(
            job_id=data["job_id"],
            digest=data["digest"],
            scenario=data["scenario"],
            state=JobState(data["state"]),
            cached=bool(data.get("cached", False)),
            attempts=int(data.get("attempts", 0)),
            error=data.get("error"),
            worker=data.get("worker"),
            pid=data.get("pid"),
            spec=dict(data.get("spec", {})),
        )


_JOB_ID = re.compile(r"^job-(\d+)$")


class JobStore:
    """Directory-backed journal of :class:`JobRecord` entries."""

    def __init__(self, root: "str | os.PathLike") -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self._seq = max(
            (int(m.group(1)) for p in self.jobs_dir.glob("job-*.json")
             if (m := _JOB_ID.match(p.stem))),
            default=0,
        )

    def new_job(self, digest: str, scenario: str,
                spec: Mapping[str, Any]) -> JobRecord:
        """Mint, persist and return the next queued record."""
        self._seq += 1
        record = JobRecord(
            job_id=f"job-{self._seq:06d}",
            digest=digest,
            scenario=scenario,
            spec=dict(spec),
        )
        self.save(record)
        return record

    def save(self, record: JobRecord) -> JobRecord:
        path = self.jobs_dir / f"{record.job_id}.json"
        fd, tmp = tempfile.mkstemp(dir=self.jobs_dir, prefix=f".{record.job_id}.")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(record.to_dict(), sort_keys=True,
                                    indent=2) + "\n")
            os.replace(tmp, path)
        except Exception:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return record

    def load(self, job_id: str) -> JobRecord:
        path = self.jobs_dir / f"{job_id}.json"
        if not path.is_file():
            raise KeyError(f"no job {job_id!r} in {self.jobs_dir}")
        return JobRecord.from_dict(json.loads(path.read_text()))

    def list(self) -> list[JobRecord]:
        """Every journal entry, in submission (id) order."""
        return [
            JobRecord.from_dict(json.loads(p.read_text()))
            for p in sorted(self.jobs_dir.glob("job-*.json"))
            if _JOB_ID.match(p.stem)
        ]

    def recoverable(self) -> list[JobRecord]:
        """Entries a restarting server must re-enqueue: anything the
        previous process accepted but never finished."""
        return [r for r in self.list()
                if r.state in (JobState.QUEUED, JobState.RUNNING)]

    def counts(self) -> dict[str, int]:
        out = {s.value: 0 for s in JobState}
        for r in self.list():
            out[r.state.value] += 1
        return out
