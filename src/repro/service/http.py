"""The stdlib HTTP transport over :class:`~repro.service.api.SubmitAPI`.

``union-sim serve`` binds a :class:`ServiceHTTPServer` (a threading
:class:`http.server.ThreadingHTTPServer`) in front of a
:class:`~repro.service.server.SimulationServer`.  The surface is a
small JSON API -- every response body is a JSON document; errors are
``{"error": ...}`` with a 4xx status:

===========  ==============================  =================================
method       path                            body / response
===========  ==============================  =================================
``GET``      ``/healthz``                    ``{"ok": true}``
``GET``      ``/stats``                      job/cache/worker counters
``GET``      ``/jobs``                       ``{"jobs": [record, ...]}``
``GET``      ``/jobs/<id>``                  one job record
``GET``      ``/jobs/<id>/result``           the result JSON document
``GET``      ``/jobs/<id>/telemetry``        stored row stream (JSONL text)
``POST``     ``/jobs``                       ``{"spec": {...}}`` -> record
``POST``     ``/jobs/<id>/cancel``           record after cancellation
===========  ==============================  =================================

The transport layer contains **no service logic**: it parses paths,
decodes JSON, and forwards to the shared API object -- exactly what the
in-process callers use, so HTTP and library behavior cannot diverge.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.scenario import ScenarioError
from repro.service.api import ServiceError, SubmitAPI


def _make_handler(api: SubmitAPI):
    class Handler(BaseHTTPRequestHandler):
        server_version = "union-sim-serve/1"

        # -- plumbing ------------------------------------------------------
        def log_message(self, fmt, *args):  # noqa: D102 - silence stderr
            pass

        def _send(self, status: int, payload: Any,
                  content_type: str = "application/json") -> None:
            body = (payload if isinstance(payload, (bytes, str))
                    else json.dumps(payload, sort_keys=True) + "\n")
            if isinstance(body, str):
                body = body.encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body)

        def _dispatch(self, method: str) -> None:
            parts = [p for p in self.path.split("?")[0].split("/") if p]
            try:
                self._route(method, parts)
            except ServiceError as exc:
                self._send(404, {"error": str(exc)})
            except ScenarioError as exc:
                self._send(400, {"error": str(exc)})
            except Exception as exc:  # noqa: BLE001 - surface, don't crash
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})

        def _body_json(self) -> Any:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            try:
                return json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ScenarioError(f"request body is not JSON: {exc}") \
                    from None

        # -- routes --------------------------------------------------------
        def _route(self, method: str, parts: list[str]) -> None:
            if method == "GET" and parts == ["healthz"]:
                self._send(200, {"ok": True})
            elif method == "GET" and parts == ["stats"]:
                self._send(200, api.stats())
            elif method == "GET" and parts == ["jobs"]:
                self._send(200, {"jobs": [r.to_dict() for r in api.jobs()]})
            elif method == "GET" and len(parts) == 2 and parts[0] == "jobs":
                self._send(200, api.status(parts[1]).to_dict())
            elif method == "GET" and len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "result":
                self._send(200, api.result(parts[1]))
            elif method == "GET" and len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "telemetry":
                self._send(200, api.telemetry_jsonl(parts[1]),
                           content_type="application/jsonl")
            elif method == "POST" and parts == ["jobs"]:
                body = self._body_json()
                spec = body.get("spec") if isinstance(body, dict) else None
                if not isinstance(spec, dict):
                    raise ScenarioError(
                        'POST /jobs body must be {"spec": {...scenario...}}')
                self._send(200, api.submit(spec).to_dict())
            elif method == "POST" and len(parts) == 3 and parts[0] == "jobs" \
                    and parts[2] == "cancel":
                self._send(200, api.cancel(parts[1]).to_dict())
            else:
                self._send(404, {"error": f"no route {method} /{'/'.join(parts)}"})

        def do_GET(self):  # noqa: N802 - http.server API
            self._dispatch("GET")

        def do_POST(self):  # noqa: N802 - http.server API
            self._dispatch("POST")

    return Handler


class ServiceHTTPServer:
    """A threading HTTP front end bound to one API object."""

    def __init__(self, api: SubmitAPI, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.api = api
        self._httpd = ThreadingHTTPServer((host, port), _make_handler(api))
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "ServiceHTTPServer":
        """Serve in a background thread (tests, embedded use)."""
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="service-http", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``union-sim serve`` path)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
