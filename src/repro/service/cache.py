"""Content-addressed result cache: canonical spec TOML -> stored run.

The per-process memo cache in :mod:`repro.harness.experiment` keyed on a
frozen dataclass; this is that idea generalized and made persistent.
The key is :func:`spec_digest` -- the SHA-256 of the spec's canonical
TOML emission (:func:`repro.scenario.dump_toml` over
:meth:`ScenarioSpec.to_dict`), the same bit-stable text the generators
round-trip on -- so two clients submitting semantically identical specs
share one simulation, across processes and across server restarts.

Two families of keys are *excluded* from the digest because they route
output without changing it:

* ``metrics.jsonl`` / ``metrics.filter`` -- pure sink routing.  The
  cache stores the run's **unfiltered** telemetry row stream, and
  :meth:`CacheEntry.replay` drives any later caller's sinks (their own
  path, their own filter globs) from the stored rows -- a cache hit
  produces the same JSONL a fresh run would have.  The opt-in
  instrument switches (``summary``, ``queue_occupancy``,
  ``latency_histograms``) *stay* in the digest: they change which rows
  exist.
* ``base_dir`` -- a local filesystem detail, excluded unless some job
  loads a relative DSL ``source`` (then it genuinely selects the
  sources and is kept).

Store layout (one directory per object, written atomically via a temp
dir + ``os.replace`` so a killed worker never leaves a half-entry)::

    <root>/objects/<digest[:2]>/<digest>/
        spec.toml         # the canonical spec text that was hashed
        result.json       # ScenarioResult.to_json_dict()
        telemetry.jsonl   # header line + every unfiltered metric row

Hit/miss counts are kept per handle and, when the cache is built with a
:class:`~repro.telemetry.Telemetry` session, published as ``cache.hit``
/ ``cache.miss`` counters.
"""

from __future__ import annotations

import copy
import hashlib
import json
import os
import tempfile
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.scenario import ScenarioSpec, dump_toml
from repro.telemetry import Telemetry, match_key

#: Keys of the ``[metrics]`` table that route output without changing
#: the simulation (excluded from the digest).
_ROUTING_METRICS_KEYS = ("jsonl", "filter")


def cache_mapping(spec: "ScenarioSpec | Mapping[str, Any]") -> dict[str, Any]:
    """The canonical mapping the digest hashes: semantics only.

    Drops the sink-routing ``metrics`` keys and (when no job reads a
    relative ``source`` file) the local ``base_dir``.
    """
    data = copy.deepcopy(
        spec.to_dict() if isinstance(spec, ScenarioSpec) else dict(spec)
    )
    metrics = data.get("metrics")
    if isinstance(metrics, Mapping):
        metrics = {k: v for k, v in metrics.items()
                   if k not in _ROUTING_METRICS_KEYS}
        if metrics:
            data["metrics"] = metrics
        else:
            data.pop("metrics")
    if not any("source" in j for j in data.get("jobs", ())):
        data.pop("base_dir", None)
    return data


def spec_digest(spec: "ScenarioSpec | Mapping[str, Any]") -> str:
    """SHA-256 hex digest of the spec's canonical TOML emission."""
    return hashlib.sha256(
        dump_toml(cache_mapping(spec)).encode("utf-8")
    ).hexdigest()


class CacheEntry:
    """One stored run: the spec text, its result JSON, its row stream."""

    def __init__(self, digest: str, path: Path) -> None:
        self.digest = digest
        self.path = path

    def spec_toml(self) -> str:
        return (self.path / "spec.toml").read_text()

    def result(self) -> dict[str, Any]:
        """The stored ``ScenarioResult.to_json_dict()`` document."""
        return json.loads((self.path / "result.json").read_text())

    def telemetry(self) -> tuple[dict[str, Any], list[dict[str, Any]]]:
        """``(header, rows)`` of the stored unfiltered row stream."""
        lines = (self.path / "telemetry.jsonl").read_text().splitlines()
        header = json.loads(lines[0]) if lines else {}
        return header, [json.loads(line) for line in lines[1:]]

    def replay(self, sink, pattern=None, meta: dict[str, Any] | None = None):
        """Drive ``sink`` from the stored rows, exactly like a live
        :meth:`Telemetry.export` would have -- the cache-hit answer to
        "but I asked for a JSONL stream".  ``pattern`` filters row keys
        with the same globs; ``meta`` overrides header fields (the
        caller's scenario/seed are already in the stored header, but an
        override keeps replay symmetrical with export).  Returns the
        sink.
        """
        header, rows = self.telemetry()
        if meta:
            header.update(meta)
        sink.write((r for r in rows if match_key(r["key"], pattern)), header)
        return sink


class ResultCache:
    """Persistent content-addressed store of finished scenario runs."""

    def __init__(self, root: "str | os.PathLike",
                 telemetry: Telemetry | None = None) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self._hit_counter = self._miss_counter = None
        if telemetry is not None:
            self._hit_counter = telemetry.counter(
                "cache.hit", doc="service result-cache hits")
            self._miss_counter = telemetry.counter(
                "cache.miss", doc="service result-cache misses")

    def _object_dir(self, digest: str) -> Path:
        return self.root / "objects" / digest[:2] / digest

    def get(self, digest: str) -> CacheEntry | None:
        """The stored entry for ``digest``, counting the hit or miss."""
        path = self._object_dir(digest)
        if (path / "result.json").is_file():
            self.hits += 1
            if self._hit_counter is not None:
                self._hit_counter.add(1)
            return CacheEntry(digest, path)
        self.misses += 1
        if self._miss_counter is not None:
            self._miss_counter.add(1)
        return None

    def contains(self, digest: str) -> bool:
        """Peek without counting (the server's submit-time probe counts
        via :meth:`get`; this is for stats/tests)."""
        return (self._object_dir(digest) / "result.json").is_file()

    def put(
        self,
        digest: str,
        spec_toml: str,
        result: Mapping[str, Any],
        rows: Iterable[Mapping[str, Any]],
        header: Mapping[str, Any],
    ) -> CacheEntry:
        """Store one finished run atomically (idempotent per digest).

        The entry is assembled in a temp dir beside ``objects/`` and
        moved into place with ``os.replace``-semantics; concurrent
        writers of the same digest race harmlessly (same content).
        """
        final = self._object_dir(digest)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = Path(tempfile.mkdtemp(dir=self.root, prefix=f".{digest[:8]}-"))
        try:
            (tmp / "spec.toml").write_text(spec_toml)
            (tmp / "result.json").write_text(
                json.dumps(dict(result), indent=2, sort_keys=True) + "\n")
            with open(tmp / "telemetry.jsonl", "w", encoding="utf-8") as fh:
                fh.write(json.dumps(dict(header), sort_keys=True) + "\n")
                for row in rows:
                    fh.write(json.dumps(row) + "\n")
            try:
                os.rename(tmp, final)
            except OSError:
                # Lost the race (or a stale entry exists): keep the
                # existing object, discard ours.
                if not (final / "result.json").is_file():
                    raise
                for f in tmp.iterdir():
                    f.unlink()
                tmp.rmdir()
        except Exception:
            if tmp.is_dir():
                for f in tmp.iterdir():
                    f.unlink()
                tmp.rmdir()
            raise
        return CacheEntry(digest, final)

    def entries(self) -> list[str]:
        """Every stored digest (sorted; complete entries only)."""
        objects = self.root / "objects"
        if not objects.is_dir():
            return []
        return sorted(
            d.name
            for shard in objects.iterdir() if shard.is_dir()
            for d in shard.iterdir() if (d / "result.json").is_file()
        )

    def stats(self) -> dict[str, int]:
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self.entries())}
