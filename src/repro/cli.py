"""Command-line interface: ``union-sim``.

Subcommands
-----------
``translate``  -- compile a coNCePTuaL file and print the Union skeleton
``validate``   -- run the Section V application-vs-skeleton validation
``run``        -- simulate one workload/placement/routing configuration
``simulate``   -- translate a coNCePTuaL file and simulate it in situ
``scenario``   -- run a declarative TOML/JSON scenario spec
``batch``      -- run every scenario spec in a directory, one summary
``env``        -- roll a scenario as a gym-style episode (or list policies)
``fuzz``       -- property-check generated scenarios over a seed sweep
``serve``      -- run the persistent simulation service (queue + cache)
``submit``     -- send one scenario spec to a running service
``jobs``       -- list/inspect/cancel jobs on a running service
``sweep``      -- run the full Figure 7/9 sweep and print summaries
``systems``    -- print the Table II system configurations
``bench``      -- run the tracked throughput benches (repo checkout only)
``topologies`` -- print the full fabric-model roster
``engines``    -- print the execution-engine roster

The subcommand reference with example output lives in ``docs/cli.md``;
the scenario spec format in ``docs/scenarios.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.configs import COMBOS, NETWORKS, make_topology
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.report import format_bytes, format_seconds, render_table
from repro.harness.sweeps import latency_sweep, panel_stats
from repro.registry import (
    RegistryError,
    all_routing_names,
    engine_registry,
    placement_registry,
    topology_registry,
)
from repro.union.translator import translate
from repro.union.validation import validate_skeleton
from repro.workloads.catalog import PANEL_APPS, WORKLOADS


def _network_choices() -> list[str]:
    """Registry topology names plus their aliases (legacy '1d'/'2d' first)."""
    aliases = list(topology_registry.aliases())
    return aliases + [n for n in topology_registry.names() if n not in aliases]


def _resolve_policy_defaults(args: argparse.Namespace) -> None:
    """Fill unset --routing/--placement from the network's registry entry.

    Each topology carries its own sensible defaults (adp/rg on the
    dragonflies, dor/rn on a torus, ...), so leaving the flags off works
    on every network instead of only on the dragonflies.
    """
    spec = topology_registry.get(args.network)
    if args.routing is None:
        args.routing = spec.default_routing
    if args.placement is None:
        args.placement = spec.default_placement


def _cmd_translate(args: argparse.Namespace) -> int:
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    skel = translate(source, args.name)
    print(skel.python_source)
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    report = validate_skeleton(source, args.ntasks, name=args.name)
    print(render_table(
        ["MPI function", "Application", "Union skeleton"],
        report.table4_rows(),
        title=f"Event counts ({args.name}, {args.ntasks} ranks)",
    ))
    print()
    print(render_table(
        ["Rank", "Application bytes", "Skeleton bytes"],
        report.table5_rows(),
        title="Bytes transmitted per rank",
    ))
    app_mem, skel_mem = report.memory_comparison()
    print(f"\nPeak comm buffer: application={format_bytes(app_mem)}, skeleton={format_bytes(skel_mem)}")
    print(f"Validation {'PASSED' if report.ok else 'FAILED'}")
    for m in report.mismatches:
        print(f"  mismatch: {m}")
    return 0 if report.ok else 1


def _check_metrics_path(path: str | None) -> str | None:
    """Fail *before* simulating on an unwritable --metrics path."""
    if path is None:
        return None
    from pathlib import Path

    parent = Path(path).parent
    if not parent.is_dir():
        return f"--metrics: directory {parent} does not exist"
    return None


def _engine_override(args: argparse.Namespace) -> dict | None:
    """The ``[engine]``-style table the --engine/--partitions flags ask for.

    ``--partitions`` alone implies the conservative engine (partitions
    are meaningless on the sequential one).
    """
    if args.engine is None and args.partitions is None:
        return None
    table: dict = {"type": args.engine or "conservative"}
    if args.partitions is not None:
        table["partitions"] = args.partitions
    return table


def _add_profile_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--profile", default=None, metavar="FILE",
        help="run the command under cProfile and dump pstats data to "
             "FILE (inspect with 'python -m pstats FILE')")


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """The shared execution-engine flags (run/scenario/batch)."""
    parser.add_argument(
        "--engine", choices=list(engine_registry.names()), default=None,
        help="execution engine ('union-sim engines' lists them; "
             "default: the spec's [engine] table, else sequential)")
    parser.add_argument(
        "--partitions", type=int, default=None, metavar="N",
        help="LP partitions for the conservative engine "
             "(implies --engine conservative)")


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.telemetry import JsonlSink, Telemetry

    if args.metrics_filter and not args.metrics:
        # A filter with nowhere to export is a silent no-op; refuse it.
        print("error: --metrics-filter requires --metrics FILE.jsonl",
              file=sys.stderr)
        return 2
    if (problem := _check_metrics_path(args.metrics)) is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    _resolve_policy_defaults(args)
    engine_table = _engine_override(args)
    cfg = ExperimentConfig(
        network=args.network,
        workload=args.workload,
        placement=args.placement,
        routing=args.routing,
        scale=args.scale,
        seed=args.seed,
        engine=engine_table["type"] if engine_table else None,
        partitions=args.partitions,
    )
    telemetry = Telemetry() if args.metrics else None
    try:
        # Capability mismatches (routing/placement the topology cannot
        # run) surface here with the registry's choose-from message.
        res = run_experiment(cfg, telemetry=telemetry)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if telemetry is not None:
        try:
            telemetry.export(JsonlSink(args.metrics), args.metrics_filter or None,
                             meta={"network": cfg.network, "workload": cfg.workload,
                                   "combo": cfg.combo, "seed": cfg.seed})
        except OSError as exc:
            print(f"error: --metrics: {exc}", file=sys.stderr)
            return 2
        print(f"wrote {args.metrics}", file=sys.stderr)
    rows = []
    for name, a in res.apps.items():
        rows.append(
            (
                name,
                a.nranks,
                "yes" if a.finished else "no",
                format_seconds(a.max_latency_box.mean),
                format_seconds(a.max_latency_box.maximum),
                format_seconds(a.max_comm_time),
                a.messages,
            )
        )
    print(render_table(
        ["app", "ranks", "done", "mean max-lat", "max max-lat", "max comm time", "msgs"],
        rows,
        title=f"{cfg.workload} on {cfg.network} ({cfg.combo}, scale={cfg.scale})",
    ))
    ls = res.link_summary
    print(
        f"\nlink loads: global={format_bytes(ls['global_total_bytes'])} "
        f"local={format_bytes(ls['local_total_bytes'])} "
        f"global fraction={ls['global_fraction']:.1%}; "
        f"events={res.events}"
    )
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    sweep = latency_sweep(scale=args.scale, seed=args.seed, jobs=args.jobs)
    for app in PANEL_APPS:
        rows = []
        for network in NETWORKS:
            for combo in COMBOS:
                cell = panel_stats(sweep, app, network, combo)
                base = cell.get("baseline")
                row = [network, combo]
                row.append(format_seconds(base.max_latency_box.mean) if base else "-")
                for w in sorted(WORKLOADS):
                    s = cell.get(w)
                    row.append(format_seconds(s.max_latency_box.mean) if s else "-")
                rows.append(row)
        print(render_table(
            ["net", "combo", "baseline"] + sorted(WORKLOADS),
            rows,
            title=f"Mean max message latency: {app}",
        ))
        print()
    return 0


def _cmd_systems(args: argparse.Namespace) -> int:
    rows = []
    for network in NETWORKS:
        t = make_topology(network, args.scale)
        d = t.describe()
        rows.append(
            (
                d["topology"],
                d["radix"],
                d["groups"],
                d["routers_per_group"],
                d["nodes_per_router"],
                d["nodes_per_group"],
                d["global_per_router"],
                d["system_size"],
            )
        )
    print(render_table(
        ["Topology", "Radix", "#Groups", "#Routers/Group", "#Nodes/Router",
         "#Nodes/Group", "#Global/Router", "System Size"],
        rows,
        title=f"System configurations (Table II, scale={args.scale})",
    ))
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    from repro.union.manager import Job, WorkloadManager

    _resolve_policy_defaults(args)
    source = open(args.file).read() if args.file != "-" else sys.stdin.read()
    skel = translate(source, args.name)
    topo = make_topology(args.network, args.scale)
    storage_nodes = None
    if args.storage_servers > 0:
        storage_nodes = [topo.n_nodes - 1 - i for i in range(args.storage_servers)]
    mgr = WorkloadManager(
        topo,
        routing=args.routing,
        placement=args.placement,
        seed=args.seed,
        storage_nodes=storage_nodes,
    )
    mgr.add_job(Job(args.name, args.ntasks, skeleton=skel))
    try:
        outcome = mgr.run(until=args.horizon)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    res = outcome.app(args.name).result
    lat = res.max_latencies_per_rank()
    print(render_table(
        ["metric", "value"],
        [
            ("finished", "yes" if res.finished else "no (raise --horizon?)"),
            ("ranks", res.nranks),
            ("messages received", sum(s.msgs_recvd for s in res.rank_stats)),
            ("avg message latency", format_seconds(res.avg_latency())),
            ("max message latency", format_seconds(max(lat) if lat else 0.0)),
            ("max comm time", format_seconds(res.max_comm_time())),
            ("MPI events", str(res.event_counts())),
        ],
        title=f"{args.name} on {args.network} "
              f"({args.placement}-{args.routing}, {args.ntasks} ranks)",
    ))
    if mgr.storage is not None:
        st = mgr.storage.app_stats(0)
        print(f"\nI/O: {st.ops} ops, read {format_bytes(st.bytes_read)}, "
              f"wrote {format_bytes(st.bytes_written)}, "
              f"mean latency {format_seconds(st.mean_latency())} "
              f"(servers at nodes {storage_nodes})")
    return 0 if res.finished else 1


def _cmd_scenario(args: argparse.Namespace) -> int:
    import json

    from repro.conceptual.errors import ConceptualError
    from repro.placement.policies import PlacementError
    from repro.scenario import (
        MetricsEntry,
        ScenarioError,
        load_scenario,
        parse_engine_table,
        render_scenario_report,
        run_scenario,
    )

    if args.horizon is not None and args.horizon <= 0:
        print(f"error: --horizon must be > 0, got {args.horizon:g}", file=sys.stderr)
        return 2
    if (problem := _check_metrics_path(args.metrics)) is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2
    try:
        spec = load_scenario(args.spec)
        if args.horizon is not None:
            spec.horizon = args.horizon
        if (engine := _engine_override(args)) is not None:
            # Flags replace the spec's [engine] table wholesale.
            spec.engine = parse_engine_table(engine)
        if args.metrics or args.metrics_filter:
            # Flags override the spec's [metrics] sink/filter but keep
            # its opt-in instrument switches.
            entry = (spec.metrics or MetricsEntry()).overridden(
                jsonl=args.metrics, filter=args.metrics_filter,
            )
            if entry.jsonl is None and not entry.summary:
                # A filter with nowhere to export is a silent no-op.
                print("error: --metrics-filter needs a sink: pass --metrics "
                      "FILE.jsonl or set [metrics] jsonl/summary in the spec",
                      file=sys.stderr)
                return 2
            spec.metrics = entry
        # run_scenario may raise too: a missing or untranslatable job
        # source file, a t=0 job that does not fit the topology, or an
        # unwritable [metrics] jsonl path (OSError) -- all after-the-
        # fact errors the user should see cleanly.
        result = run_scenario(spec)
    except (ScenarioError, PlacementError, ConceptualError, RegistryError,
            OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_scenario_report(result))
    if args.metrics:
        print(f"wrote {args.metrics}", file=sys.stderr)
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(result.to_json_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    apps = [j for j in result.jobs if not j.background]
    return 0 if all(j.finished for j in apps) else 1


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.scenario import ScenarioError, render_batch_summary, run_batch

    if args.metrics_filter and not args.metrics:
        # Without --metrics the filter only reaches specs that declare
        # their own [metrics] sink; surface the likely mistake but keep
        # going for the specs it can affect.
        print("warning: --metrics-filter without --metrics DIR only affects "
              "specs with their own [metrics] jsonl/summary sink",
              file=sys.stderr)
    try:
        batch = run_batch(
            args.directory,
            workers=args.jobs,
            metrics_dir=args.metrics,
            metrics_filter=list(args.metrics_filter) if args.metrics_filter else None,
            engine=_engine_override(args),
        )
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_batch_summary(batch))
    if args.json:
        batch.write_json(args.json)
        print(f"wrote {args.json}")
    return 0 if not batch.failures else 1


def _cmd_fuzz(args: argparse.Namespace) -> int:
    import json

    from repro.fuzz import fuzz_seeds, render_fuzz_report
    from repro.registry import RegistryError, generator_registry
    from repro.scenario import ScenarioError

    try:
        generator_registry.get(args.generator, path="generator")
        report = fuzz_seeds(
            args.generator,
            seeds=args.seeds,
            base_seed=args.base_seed,
            jobs=args.jobs,
            parity_stride=args.parity_stride,
            repro_dir=args.repro_dir,
            shrink=not args.no_shrink,
        )
    except (RegistryError, ScenarioError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_fuzz_report(report))
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(report.to_json_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.ok else 1


def _cmd_env(args: argparse.Namespace) -> int:
    import json
    import math

    from repro.conceptual.errors import ConceptualError
    from repro.placement.policies import PlacementError
    from repro.registry import policy_registry
    from repro.scenario import ScenarioError, load_scenario

    if args.spec is None:
        # Roster mode: the policy registry plus the action alphabet.
        from repro.env import SimulationEnv

        rows = []
        for spec in policy_registry:
            rows.append((
                spec.name,
                ", ".join(spec.hooks) or "-",
                ", ".join(p.name for p in spec.params) or "-",
                spec.summary,
            ))
        print(render_table(
            ["name", "hooks", "params", "summary"],
            rows,
            title="Control-policy registry",
        ))
        print("\nDeclared parameters (set them in a scenario [env] table "
              "or via --policy):")
        for spec in policy_registry:
            if not spec.params:
                continue
            print(f"\n  {spec.name}")
            for p in spec.params:
                print(f"    {p.describe()}")
        aliases = policy_registry.aliases()
        if aliases:
            pairs = ", ".join(f"{a} -> {n}" for a, n in aliases.items())
            print(f"\nAliases: {pairs}.")
        print(f"Episode actions: {', '.join(SimulationEnv.ACTIONS)}.")
        print("Observation/action schema and episode runner: docs/env.md.")
        return 0

    from repro.env import run_episode

    if args.window is not None and args.window <= 0:
        print(f"error: --window must be > 0, got {args.window:g}",
              file=sys.stderr)
        return 2
    steps: list[tuple] = []

    def on_step(i, obs, reward, info):
        steps.append((
            i + 1,
            format_seconds(obs.clock),
            info["action"],
            info["policy"],
            f"{obs.jobs_started}/{obs.jobs_total}",
            obs.jobs_finished,
            obs.free_nodes,
            f"{reward:+.3e}",
        ))

    try:
        spec = load_scenario(args.spec)
        ep = run_episode(
            spec,
            policy=args.policy,
            seed=args.seed,
            window=args.window,
            actions=list(args.action) if args.action else None,
            on_step=on_step,
        )
    except (ScenarioError, PlacementError, ConceptualError, RegistryError,
            ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_table(
        ["step", "t", "action", "policy", "started", "done", "free", "reward"],
        steps,
        title=(f"episode: {ep.scenario!r}, policy {ep.policy['type']!r}, "
               f"seed {ep.seed}, window {format_seconds(ep.window)}"),
    ))
    print(
        f"return {ep.total_reward:+.3e} ({ep.reward_kind}) over {ep.steps} "
        f"steps; end time {format_seconds(ep.end_time)}, {ep.events} events"
    )
    if args.json:
        with open(args.json, "w") as fh:
            json.dump(ep.to_dict(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    if not math.isfinite(ep.total_reward):
        # The reward contract: every episode return is finite.
        print(f"error: non-finite episode return {ep.total_reward!r}",
              file=sys.stderr)
        return 3
    apps = [j for j in ep.result["jobs"] if not j["background"]]
    return 0 if all(j["finished"] or j["skip_reason"] for j in apps) else 1


def _cmd_topologies(args: argparse.Namespace) -> int:
    from repro.registry import available_placements

    rows = []
    for spec in topology_registry:
        t = spec.build(spec.presets[args.scale])
        d = t.describe()
        rows.append((
            spec.name, d["topology"], d["system_size"], t.n_routers,
            t.radix(), t.diameter(),
            "/".join(spec.routings), "/".join(available_placements(spec.name)),
        ))
    print(render_table(
        ["name", "topology", "nodes", "routers", "radix", "diameter",
         "routings", "placements"],
        rows,
        title=f"Fabric model registry ({args.scale} presets)",
    ))
    print("\nDeclared parameters (override any of them in a scenario "
          "[topology] table or via repro.registry.build_topology):")
    for spec in topology_registry:
        print(f"\n  {spec.name} -- {spec.summary}")
        for p in spec.params:
            preset = spec.presets[args.scale].get(p.name)
            print(f"    {p.name}: {p.kind} = {preset!r}  ({p.doc})")
    aliases = topology_registry.aliases()
    if aliases:
        pairs = ", ".join(f"{a} -> {n}" for a, n in aliases.items())
        print(f"\nAliases: {pairs}.")
    print("Dragonfly scales: use 'union-sim systems --scale paper' for Table II.")
    return 0


def _load_throughput():
    """The ``benchmarks/throughput.py`` module, or ``None``.

    The bench roster lives with the tracked perf trajectory at the repo
    root, outside the installed package; resolve it relative to the
    package and put the root on ``sys.path`` so the module's own
    ``tests.pdes`` imports work.  ``None`` means no repo checkout.
    """
    import importlib
    from pathlib import Path

    import repro

    root = Path(repro.__file__).resolve().parents[2]
    if not (root / "benchmarks" / "throughput.py").is_file():
        return None
    if str(root) not in sys.path:
        sys.path.insert(0, str(root))
    return importlib.import_module("benchmarks.throughput")


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    throughput = _load_throughput()
    if throughput is None:
        print("error: 'union-sim bench' needs a repo checkout "
              "(benchmarks/throughput.py not found)", file=sys.stderr)
        return 2
    benches = dict(throughput.BENCHES)
    if args.engine is not None:
        # Substitute a registry engine into the parameterizable benches
        # (a fresh engine per repeat; see engine_benches).
        benches = throughput.engine_benches({"type": args.engine})
    if args.list:
        for name in benches:
            doc = (throughput.BENCHES.get(name, benches[name]).__doc__
                   or "").strip().splitlines()
            print(f"{name:28s} {doc[0] if doc else ''}")
        return 0
    if args.only:
        unknown = [n for n in args.only if n not in benches]
        if unknown:
            print(f"error: unknown bench(es) {', '.join(unknown)}; "
                  f"choose from: {', '.join(benches)}", file=sys.stderr)
            return 2
        benches = {n: benches[n] for n in args.only}
    try:
        results = throughput.measure(args.repeat, benches=benches)
    except RegistryError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for name, r in results.items():
        print(f"{name:28s} {r['events']:>9d} events  {r['seconds']:.3f}s  "
              f"{r['events_per_sec']:>9,d} ev/s  "
              f"{r['ref_events_per_sec']:>9,d} ref-ev/s")
    if args.json:
        doc = {"engine": args.engine, "repeat": args.repeat,
               "benches": results}
        with open(args.json, "w") as fh:
            json.dump(doc, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0


def _cmd_engines(args: argparse.Namespace) -> int:
    rows = []
    for spec in engine_registry:
        rows.append((
            spec.name,
            "yes" if getattr(spec, "partitioned", False) else "no",
            ", ".join(p.name for p in spec.params) or "-",
            spec.summary,
        ))
    print(render_table(
        ["name", "partitioned", "params", "summary"],
        rows,
        title="Execution-engine registry",
    ))
    print("\nDeclared parameters (set them in a scenario [engine] table "
          "or via --engine/--partitions):")
    for spec in engine_registry:
        if not spec.params:
            continue
        print(f"\n  {spec.name}")
        for p in spec.params:
            print(f"    {p.describe()}")
    aliases = engine_registry.aliases()
    if aliases:
        pairs = ", ".join(f"{a} -> {n}" for a, n in aliases.items())
        print(f"\nAliases: {pairs}.")
    print("Engine model and lookahead contract: docs/engines.md.")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import SimulationServer
    from repro.service.http import ServiceHTTPServer

    if args.checkpoint_interval is not None and args.checkpoint_interval <= 0:
        print(f"error: --checkpoint-interval must be > 0, got "
              f"{args.checkpoint_interval:g}", file=sys.stderr)
        return 2
    try:
        server = SimulationServer(
            args.state,
            workers=args.workers,
            cache_dir=args.cache,
            checkpoint_interval=args.checkpoint_interval,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with server:
        try:
            http = ServiceHTTPServer(server, host=args.host, port=args.port)
        except OSError as exc:
            print(f"error: cannot bind {args.host}:{args.port}: {exc}",
                  file=sys.stderr)
            return 2
        print(f"union-sim service on {http.url}", file=sys.stderr)
        print(f"  state {server.state_dir}  cache {server.cache.root}  "
              f"workers {server.n_workers}", file=sys.stderr)
        try:
            http.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down (queued jobs stay journaled and are "
                  "recovered on the next serve)", file=sys.stderr)
        finally:
            http.stop()
    return 0


_TERMINAL_STATES = ("done", "failed", "cancelled")


def _cmd_submit(args: argparse.Namespace) -> int:
    import json

    from repro.scenario import ScenarioError, load_scenario
    from repro.service import ServiceError
    from repro.service.client import ServiceClient

    try:
        spec = load_scenario(args.spec)
    except ScenarioError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    client = ServiceClient(args.server)
    try:
        record = client.submit(spec.to_dict())
        if (args.wait or args.json) and record["state"] not in _TERMINAL_STATES:
            record = client.wait(record["job_id"], timeout=args.timeout)
        if args.json and record["state"] == "done":
            with open(args.json, "w") as fh:
                json.dump(client.result(record["job_id"]), fh, indent=2)
                fh.write("\n")
            print(f"wrote {args.json}")
    except (ServiceError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    line = (f"job {record['job_id']} ({record['scenario']}): "
            f"{record['state']}")
    if record.get("cached"):
        line += " (cache hit)"
    if record.get("error"):
        line += f" -- {record['error']}"
    print(line)
    return 0 if record["state"] not in ("failed", "cancelled") else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    import json

    from repro.service import ServiceError
    from repro.service.client import ServiceClient

    client = ServiceClient(args.server)
    try:
        if args.job_id is None:
            if args.cancel or args.result:
                print("error: --cancel/--result need a JOB id",
                      file=sys.stderr)
                return 2
            records = client.jobs()
            stats = client.stats()
            rows = [(r["job_id"], r["scenario"], r["state"],
                     "yes" if r.get("cached") else "no",
                     r.get("attempts", 0), r.get("error") or "-")
                    for r in records]
            print(render_table(
                ["job", "scenario", "state", "cached", "attempts", "note"],
                rows,
                title=f"jobs on {client.url}",
            ))
            cache = stats["cache"]
            line = (f"cache: {cache['entries']} entries, "
                    f"{cache['hits']} hits / {cache['misses']} misses")
            if (workers := stats.get("workers")) is not None:
                line += (f"; workers: {workers['alive']}/"
                         f"{workers['configured']} alive, "
                         f"{workers['busy']} busy")
            print(line)
            return 0
        if args.result:
            print(json.dumps(client.result(args.job_id), indent=2,
                             sort_keys=True))
            return 0
        record = (client.cancel(args.job_id) if args.cancel
                  else client.status(args.job_id))
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    return 0


def _add_metrics_flags(parser: argparse.ArgumentParser,
                       metrics_help: str | None = None,
                       metavar: str = "FILE.jsonl") -> None:
    """The shared telemetry export flags (run/scenario/batch)."""
    parser.add_argument(
        "--metrics", default=None, metavar=metavar,
        help=metrics_help or "write telemetry metric rows as JSONL "
             "(see docs/telemetry.md for the row schema)")
    parser.add_argument(
        "--metrics-filter", action="append", default=None, metavar="GLOB",
        help="only export metric keys matching this glob "
             "(repeatable, e.g. 'mpi.job.*' or 'net.link.class.*')")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(prog="union-sim", description=__doc__)
    sub = p.add_subparsers(dest="cmd", required=True)

    t = sub.add_parser("translate", help="compile coNCePTuaL source to a Union skeleton")
    t.add_argument("file", help="source file ('-' for stdin)")
    t.add_argument("--name", default="app")
    t.set_defaults(fn=_cmd_translate)

    v = sub.add_parser("validate", help="application-vs-skeleton validation")
    v.add_argument("file", help="source file ('-' for stdin)")
    v.add_argument("--name", default="app")
    v.add_argument("--ntasks", type=int, default=16)
    v.set_defaults(fn=_cmd_validate)

    networks = _network_choices()
    routings = list(all_routing_names())
    placements = list(placement_registry.names())

    r = sub.add_parser("run", help="simulate one configuration")
    r.add_argument("--network", choices=networks, default="1d",
                   help="registry fabric model ('union-sim topologies' lists them)")
    r.add_argument("--workload", default="workload3")
    r.add_argument("--placement", choices=placements, default=None,
                   help="placement policy (default: the network's registry default)")
    r.add_argument("--routing", choices=routings, default=None,
                   help="routing policy (default: the network's registry default)")
    r.add_argument("--scale", choices=["mini", "paper"], default="mini")
    r.add_argument("--seed", type=int, default=1)
    _add_engine_flags(r)
    _add_metrics_flags(r)
    _add_profile_flag(r)
    r.set_defaults(fn=_cmd_run)

    s = sub.add_parser("sweep", help="full placement x routing sweep")
    s.add_argument("--scale", choices=["mini"], default="mini")
    s.add_argument("--seed", type=int, default=1)
    s.add_argument("--jobs", type=int, default=1,
                   help="worker processes for the sweep cells (1 = in-process)")
    s.set_defaults(fn=_cmd_sweep)

    y = sub.add_parser("systems", help="print Table II configurations")
    y.add_argument("--scale", choices=["mini", "paper"], default="paper")
    y.set_defaults(fn=_cmd_systems)

    m = sub.add_parser("simulate", help="translate a coNCePTuaL file and simulate it in situ")
    m.add_argument("file", help="source file ('-' for stdin)")
    m.add_argument("--name", default="app")
    m.add_argument("--ntasks", type=int, default=16)
    m.add_argument("--network", choices=networks, default="1d",
                   help="registry fabric model ('union-sim topologies' lists them)")
    m.add_argument("--placement", choices=placements, default=None,
                   help="placement policy (default: the network's registry default)")
    m.add_argument("--routing", choices=routings, default=None,
                   help="routing policy (default: the network's registry default)")
    m.add_argument("--scale", choices=["mini", "paper"], default="mini")
    m.add_argument("--seed", type=int, default=1)
    m.add_argument("--horizon", type=float, default=10.0,
                   help="simulation horizon in seconds")
    m.add_argument("--storage-servers", type=int, default=0,
                   help="attach N storage servers (enables DSL I/O verbs)")
    m.set_defaults(fn=_cmd_simulate)

    c = sub.add_parser("scenario", help="run a declarative TOML/JSON scenario spec")
    c.add_argument("spec", help="path to a .toml or .json scenario file")
    c.add_argument("--horizon", type=float, default=None,
                   help="override the spec's simulation horizon (seconds)")
    c.add_argument("--json", default=None, metavar="FILE",
                   help="also write the full per-job metrics as JSON")
    _add_engine_flags(c)
    _add_metrics_flags(c)
    _add_profile_flag(c)
    c.set_defaults(fn=_cmd_scenario)

    b = sub.add_parser("batch", help="run every scenario spec in a directory")
    b.add_argument("directory", help="directory of .toml/.json scenario files")
    b.add_argument("--jobs", type=int, default=1,
                   help="worker processes (1 = sequential)")
    b.add_argument("--json", default=None, metavar="FILE",
                   help="also write every scenario's metrics as JSON")
    _add_engine_flags(b)
    _add_metrics_flags(b, metrics_help=(
        "write each scenario's telemetry rows to "
        "DIR/<spec>.metrics.jsonl"), metavar="DIR")
    b.set_defaults(fn=_cmd_batch)

    n = sub.add_parser(
        "env", help="roll a scenario as a gym-style episode (no spec: "
                    "print the control-policy roster)")
    n.add_argument("spec", nargs="?", default=None,
                   help="path to a .toml or .json scenario file "
                        "(omit to list the registered control policies)")
    n.add_argument("--policy", default=None,
                   help="control policy driving the session's decision hooks "
                        "(default: the spec's [env] table, else scripted)")
    n.add_argument("--seed", type=int, default=None,
                   help="override the spec's seed for this episode")
    n.add_argument("--window", type=float, default=None, metavar="SECONDS",
                   help="simulated seconds per env step "
                        "(default: the spec's [env] table, else horizon/8)")
    n.add_argument("--action", action="append", default=None,
                   metavar="LABEL",
                   help="script the next step's action (repeatable: keep, "
                        "scripted, load-aware, defer); later steps use 'keep'")
    n.add_argument("--json", default=None, metavar="FILE",
                   help="also write the episode record and result as JSON")
    n.set_defaults(fn=_cmd_env)

    f = sub.add_parser(
        "fuzz",
        help="property-check generated scenarios over a seed sweep",
        description="Generate scenarios from a registered generator over "
                    "a contiguous seed range, run each one, and check the "
                    "invariant roster (conservation, no stuck jobs, "
                    "determinism, engine parity, monotone clocks); failing "
                    "cases are shrunk to a minimal TOML repro.")
    f.add_argument("--seeds", type=int, default=50, metavar="N",
                   help="seeds to sweep (default 50)")
    f.add_argument("--base-seed", type=int, default=0, metavar="S",
                   help="first seed of the sweep (default 0)")
    f.add_argument("--jobs", type=int, default=1, metavar="M",
                   help="worker processes for the sweep (default 1)")
    f.add_argument("--generator", default="random-mix",
                   help="scenario generator to fuzz (default random-mix; "
                        "see docs/scenarios.md for the roster)")
    f.add_argument("--parity-stride", type=int, default=5, metavar="K",
                   help="run the engine-parity invariant on every K-th "
                        "case (0 disables it; default 5)")
    f.add_argument("--repro-dir", default="fuzz-repros", metavar="DIR",
                   help="directory for shrunken failing-case TOML repros")
    f.add_argument("--no-shrink", action="store_true",
                   help="report failures without shrinking them")
    f.add_argument("--json", default=None, metavar="FILE",
                   help="also write the sweep report as JSON")
    f.set_defaults(fn=_cmd_fuzz)

    from repro.service.client import DEFAULT_SERVER

    sv = sub.add_parser(
        "serve",
        help="run the persistent simulation service",
        description="Bind the HTTP job API in front of a persistent worker "
                    "pool with a durable job journal, a content-addressed "
                    "result cache and checkpoint/resume crash recovery "
                    "(docs/service.md).")
    sv.add_argument("--state", default="service-state", metavar="DIR",
                    help="service state directory: job journal, checkpoint "
                         "cursors and (by default) the result cache")
    sv.add_argument("--workers", type=int, default=2, metavar="N",
                    help="persistent worker processes (default 2)")
    sv.add_argument("--host", default="127.0.0.1",
                    help="address to bind (default 127.0.0.1)")
    sv.add_argument("--port", type=int, default=7321,
                    help="port to bind (default 7321)")
    sv.add_argument("--cache", default=None, metavar="DIR",
                    help="result-cache directory (default: STATE/cache; "
                         "share one across services to share results)")
    sv.add_argument("--checkpoint-interval", type=float, default=None,
                    metavar="SECONDS",
                    help="write a checkpoint cursor every SECONDS of "
                         "simulated time (default: only at the horizon)")
    sv.set_defaults(fn=_cmd_serve)

    u = sub.add_parser(
        "submit",
        help="send one scenario spec to a running service",
        description="Validate a TOML/JSON scenario locally, submit it to a "
                    "`union-sim serve` endpoint, and print its job record.")
    u.add_argument("spec", help="path to a .toml or .json scenario file")
    u.add_argument("--server", default=DEFAULT_SERVER, metavar="URL",
                   help=f"service endpoint (default {DEFAULT_SERVER})")
    u.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")
    u.add_argument("--timeout", type=float, default=120.0, metavar="SECONDS",
                   help="give up waiting after SECONDS (default 120)")
    u.add_argument("--json", default=None, metavar="FILE",
                   help="write the finished job's result document as JSON "
                        "(implies --wait)")
    u.set_defaults(fn=_cmd_submit)

    j = sub.add_parser(
        "jobs",
        help="list/inspect/cancel jobs on a running service",
        description="With no JOB id: one table of every journaled job plus "
                    "cache/worker counters.  With a JOB id: that job's "
                    "record as JSON (--result fetches its result document, "
                    "--cancel cancels it).")
    j.add_argument("job_id", nargs="?", default=None, metavar="JOB",
                   help="job id (e.g. job-000001); omit to list every job")
    j.add_argument("--server", default=DEFAULT_SERVER, metavar="URL",
                   help=f"service endpoint (default {DEFAULT_SERVER})")
    j.add_argument("--cancel", action="store_true",
                   help="cancel the job (queued: dropped at pick-up; "
                        "running: its worker is killed)")
    j.add_argument("--result", action="store_true",
                   help="print the finished job's result document as JSON")
    j.set_defaults(fn=_cmd_jobs)

    o = sub.add_parser("topologies", help="print the fabric-model registry")
    o.add_argument("--scale", choices=["mini", "paper"], default="mini",
                   help="which preset to instantiate for the size columns")
    o.set_defaults(fn=_cmd_topologies)

    e = sub.add_parser("engines", help="print the execution-engine registry")
    e.set_defaults(fn=_cmd_engines)

    k = sub.add_parser(
        "bench",
        help="run the tracked throughput benches (repo checkout only)",
        description="Run the benchmarks/throughput.py roster -- the "
                    "tracked events-per-second trajectory -- and print "
                    "each bench's raw and reference-normalized rate "
                    "(docs/cli.md#bench).")
    k.add_argument("--list", action="store_true",
                   help="print the bench roster and exit")
    k.add_argument("--only", action="append", default=None, metavar="NAME",
                   help="run only this bench (repeatable)")
    k.add_argument("--engine", choices=list(engine_registry.names()),
                   default=None,
                   help="substitute a registry engine into the "
                        "engine-parameterizable benches (storm; PHOLD "
                        "for unpartitioned engines)")
    k.add_argument("--repeat", type=int, default=3, metavar="N",
                   help="runs per bench, best kept (default 3)")
    k.add_argument("--json", default=None, metavar="FILE",
                   help="also write the results as JSON")
    k.set_defaults(fn=_cmd_bench)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "profile", None):
        import cProfile

        prof = cProfile.Profile()
        try:
            return prof.runcall(args.fn, args)
        finally:
            prof.dump_stats(args.profile)
            print(f"wrote profile to {args.profile}", file=sys.stderr)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
