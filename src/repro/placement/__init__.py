"""Job placement policies (Section IV-C)."""

from repro.placement.policies import (
    PlacementError,
    random_nodes,
    random_routers,
    random_groups,
    make_placement,
    topology_has_groups,
    topology_has_uniform_routers,
    PLACEMENTS,
)

__all__ = [
    "PlacementError",
    "random_nodes",
    "random_routers",
    "random_groups",
    "make_placement",
    "topology_has_groups",
    "topology_has_uniform_routers",
    "PLACEMENTS",
]
