"""Job placement policies for multi-job co-scheduling (Section IV-C).

Each policy maps a list of job sizes (rank counts) onto disjoint node
sets of a topology:

* **Random Nodes (RN)** -- nodes drawn uniformly from the whole system;
  nodes on one router typically end up in different jobs.
* **Random Routers (RR)** -- jobs get whole routers (randomly chosen);
  nodes under a router are assigned consecutively, preventing
  router-level sharing between jobs.
* **Random Groups (RG)** -- jobs get whole groups; confines most of a
  job's traffic within its own groups.

All policies draw from a deterministic :class:`numpy.random.Generator`
stream derived from the experiment seed.

Every policy accepts an optional ``allowed_nodes`` set restricting the
draw to a subset of the system -- the residual free-node set when jobs
arrive mid-simulation (scenario dynamic arrivals).  ``None`` (the
default) means the whole system and reproduces the historical draws
bit-for-bit.  Under RR/RG a router/group is eligible only when *all* of
its nodes are allowed, preserving each policy's isolation guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.network.topology import Topology
from repro.pdes.rng import lp_stream


class PlacementError(ValueError):
    """The requested jobs do not fit under the policy's constraints."""


def topology_has_uniform_routers(topo) -> bool:
    """True iff every router hosts exactly ``nodes_per_router`` nodes.

    The structural requirement behind RR (and the registry's
    ``uniform-nodes`` capability): handing out "whole routers" on a
    fabric where some routers host no nodes (a fat-tree's aggregation
    and core switches) would silently under-allocate jobs.
    """
    return (
        hasattr(topo, "nodes_per_router")
        and topo.n_routers * topo.nodes_per_router == topo.n_nodes
    )


def topology_has_groups(topo) -> bool:
    """True iff the topology has dragonfly-style groups covering every
    node -- the structural requirement behind RG (and the registry's
    ``groups`` capability)."""
    return all(
        hasattr(topo, attr)
        for attr in ("n_groups", "nodes_per_group", "nodes_of_group", "group_of")
    ) and topo.n_groups * topo.nodes_per_group == topo.n_nodes


def _check_uniform_routers(topo, policy: str) -> None:
    if not topology_has_uniform_routers(topo):
        label = getattr(topo, "name", type(topo).__name__)
        raise PlacementError(
            f"placement {policy!r} requires every router to host nodes "
            f"(uniform node attachment), which topology {label!r} does not "
            "provide; use 'rn' instead"
        )


def _check_groups(topo, policy: str) -> None:
    if not topology_has_groups(topo):
        label = getattr(topo, "name", type(topo).__name__)
        raise PlacementError(
            f"placement {policy!r} requires dragonfly-style group structure, "
            f"which topology {label!r} does not provide; use 'rn' (or 'rr' "
            "where routers host nodes uniformly) instead"
        )


def _check_total(
    topo: Topology, job_sizes: list[int], allowed_nodes: set[int] | None = None
) -> None:
    for i, size in enumerate(job_sizes):
        if size < 1:
            raise PlacementError(f"job {i} has non-positive size {size}")
    total = sum(job_sizes)
    capacity = topo.n_nodes if allowed_nodes is None else len(allowed_nodes)
    if total > capacity:
        word = "system has only" if allowed_nodes is None else "free-node set has only"
        raise PlacementError(f"jobs need {total} nodes but the {word} {capacity}")


def random_nodes(
    topo: Topology,
    job_sizes: list[int],
    seed: int = 0,
    allowed_nodes: set[int] | None = None,
) -> list[list[int]]:
    """RN: sample each job's nodes uniformly from the allowed set."""
    _check_total(topo, job_sizes, allowed_nodes)
    rng = lp_stream(seed, 101)
    if allowed_nodes is None:
        perm = rng.permutation(topo.n_nodes)
    else:
        perm = rng.permutation(sorted(allowed_nodes))
    out: list[list[int]] = []
    cursor = 0
    for size in job_sizes:
        out.append([int(x) for x in perm[cursor : cursor + size]])
        cursor += size
    return out


def random_routers(
    topo: Topology,
    job_sizes: list[int],
    seed: int = 0,
    allowed_nodes: set[int] | None = None,
) -> list[list[int]]:
    """RR: give each job whole routers; fill each router's nodes consecutively."""
    _check_uniform_routers(topo, "rr")
    _check_total(topo, job_sizes, allowed_nodes)
    npr = topo.nodes_per_router
    rng = lp_stream(seed, 102)
    routers = [int(r) for r in rng.permutation(topo.n_routers)]
    if allowed_nodes is not None:
        routers = [
            r for r in routers
            if all(n in allowed_nodes for n in topo.nodes_of_router(r))
        ]
    needed = sum(-(-size // npr) for size in job_sizes)
    if needed > len(routers):
        pool = "system has only" if allowed_nodes is None else "free set has only"
        raise PlacementError(
            f"jobs need {needed} whole routers but the {pool} {len(routers)}"
        )
    out: list[list[int]] = []
    cursor = 0
    for size in job_sizes:
        n_routers = -(-size // npr)
        nodes: list[int] = []
        for r in routers[cursor : cursor + n_routers]:
            nodes.extend(topo.nodes_of_router(r))
        out.append(nodes[:size])
        cursor += n_routers
    return out


def random_groups(
    topo: Topology,
    job_sizes: list[int],
    seed: int = 0,
    allowed_nodes: set[int] | None = None,
) -> list[list[int]]:
    """RG: give each job whole groups; fill each group's nodes consecutively."""
    _check_groups(topo, "rg")
    _check_total(topo, job_sizes, allowed_nodes)
    npg = topo.nodes_per_group
    rng = lp_stream(seed, 103)
    groups = [int(g) for g in rng.permutation(topo.n_groups)]
    if allowed_nodes is not None:
        groups = [
            g for g in groups
            if all(n in allowed_nodes for n in topo.nodes_of_group(g))
        ]
    needed = sum(-(-size // npg) for size in job_sizes)
    if needed > len(groups):
        pool = "system has only" if allowed_nodes is None else "free set has only"
        raise PlacementError(
            f"jobs need {needed} whole groups but the {pool} {len(groups)}"
        )
    out: list[list[int]] = []
    cursor = 0
    for size in job_sizes:
        n_groups = -(-size // npg)
        nodes: list[int] = []
        for g in groups[cursor : cursor + n_groups]:
            nodes.extend(topo.nodes_of_group(g))
        out.append(nodes[:size])
        cursor += n_groups
    return out


PLACEMENTS = {
    "rn": random_nodes,
    "rr": random_routers,
    "rg": random_groups,
}


def make_placement(
    name: str,
    topo: Topology,
    job_sizes: list[int],
    seed: int = 0,
    allowed_nodes: set[int] | None = None,
) -> list[list[int]]:
    """Apply the placement policy named ``rn``/``rr``/``rg``."""
    try:
        fn = PLACEMENTS[name.lower()]
    except KeyError:
        raise PlacementError(
            f"unknown placement {name!r}; expected one of {sorted(PLACEMENTS)}"
        ) from None
    return fn(topo, job_sizes, seed, allowed_nodes)
