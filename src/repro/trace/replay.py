"""Trace replay: drive the simulator from a recorded trace.

The replay program re-issues each rank's recorded operations in order.
Two Table I limitations are faithfully present:

* the entire trace must be resident in memory for the whole simulation
  (*large memory footprint*);
* a trace records one specific rank count -- replaying it on a
  different number of ranks raises :class:`TraceScalingError`
  (*scaling application size: re-tracing*).
"""

from __future__ import annotations

from typing import Callable

from repro.trace.format import TraceSet


class TraceScalingError(ValueError):
    """Trace rank count does not match the job's rank count."""


def replay_program(traces: TraceSet) -> Callable:
    """Build a rank program that replays ``traces``.

    Use with :class:`~repro.mpi.engine.JobSpec` or
    :meth:`WorkloadManager.add_program_job`.
    """

    def program(ctx):
        if ctx.size != traces.nranks:
            raise TraceScalingError(
                f"trace was recorded at {traces.nranks} ranks; job has "
                f"{ctx.size}. Trace-driven simulation cannot scale the "
                "application size -- re-trace at the target scale."
            )
        pending = []
        for op in traces.ops[ctx.rank]:
            name = op.name
            if name == "isend":
                dst, nbytes, tag = op.args
                pending.append((yield ctx.isend(dst, nbytes, tag)))
            elif name == "irecv":
                src, tag = op.args
                pending.append((yield ctx.irecv(src, tag)))
            elif name == "waitall":
                # Approximation: a recorded wait(all) completes the most
                # recently issued n requests (exact for programs that
                # accumulate-then-drain, which all shipped workloads do).
                (n,) = op.args
                if n > len(pending):
                    raise ValueError(
                        f"corrupt trace: waitall({n}) with only {len(pending)} pending"
                    )
                if n:
                    batch = pending[-n:]
                    pending = pending[:-n]
                    yield ctx.waitall(batch)
            elif name == "send":
                dst, nbytes, tag = op.args
                yield from ctx.send(dst, nbytes, tag)
            elif name == "recv":
                src, tag = op.args
                yield from ctx.recv(src, tag)
            elif name == "compute":
                (seconds,) = op.args
                yield ctx.compute(seconds)
            elif name == "barrier":
                yield from ctx.barrier()
            elif name == "bcast":
                nbytes, root = op.args
                yield from ctx.bcast(nbytes, root)
            elif name == "reduce":
                nbytes, root = op.args
                yield from ctx.reduce(nbytes, root)
            elif name == "allreduce":
                (nbytes,) = op.args
                yield from ctx.allreduce(nbytes)
            elif name == "allgather":
                (nbytes,) = op.args
                yield from ctx.allgather(nbytes)
            elif name == "alltoall":
                (nbytes,) = op.args
                yield from ctx.alltoall(nbytes)
            else:  # pragma: no cover - format validates op names
                raise ValueError(f"unknown trace op {name!r}")

    return program
