"""On-disk trace format (DUMPI substitute).

A trace set is one record stream per rank.  Each record is one MPI-level
operation::

    ("send",    dst, nbytes, tag)
    ("isend",   dst, nbytes, tag)
    ("recv",    src, tag)
    ("irecv",   src, tag)
    ("waitall", n_pending)
    ("compute", seconds)
    ("barrier",)
    ("bcast",   nbytes, root)
    ("reduce",  nbytes, root)
    ("allreduce", nbytes)
    ("allgather", nbytes)
    ("alltoall",  nbytes)

Serialization is gzip JSON-lines: line 0 is a header, then one line per
(rank, op).  Deliberately verbose -- real traces are, and their bulk is
part of the Table I story.
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Iterable

FORMAT_VERSION = 1

#: op name -> number of arguments (for validation)
OP_ARITY = {
    "send": 3,
    "isend": 3,
    "recv": 2,
    "irecv": 2,
    "waitall": 1,
    "compute": 1,
    "barrier": 0,
    "bcast": 2,
    "reduce": 2,
    "allreduce": 1,
    "allgather": 1,
    "alltoall": 1,
}


class TraceOp(tuple):
    """One recorded operation: ``(name, *args)``."""

    __slots__ = ()

    def __new__(cls, name: str, *args):
        arity = OP_ARITY.get(name)
        if arity is None:
            raise ValueError(f"unknown trace op {name!r}")
        if len(args) != arity:
            raise ValueError(f"trace op {name!r} takes {arity} args, got {len(args)}")
        return super().__new__(cls, (name, *args))

    @property
    def name(self) -> str:
        return self[0]

    @property
    def args(self) -> tuple:
        return tuple(self[1:])


class TraceSet:
    """Recorded operations of one job, indexed by rank."""

    def __init__(self, nranks: int, job_name: str = "traced") -> None:
        if nranks < 1:
            raise ValueError(f"nranks must be >= 1, got {nranks}")
        self.nranks = nranks
        self.job_name = job_name
        self.ops: list[list[TraceOp]] = [[] for _ in range(nranks)]

    def append(self, rank: int, op: TraceOp) -> None:
        self.ops[rank].append(op)

    def total_ops(self) -> int:
        return sum(len(o) for o in self.ops)

    def byte_size(self) -> int:
        """Approximate in-memory footprint: serialized size of all records."""
        return sum(
            len(json.dumps([rank, list(op)]))
            for rank in range(self.nranks)
            for op in self.ops[rank]
        )

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, TraceSet)
            and self.nranks == other.nranks
            and self.ops == other.ops
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceSet({self.job_name!r}, nranks={self.nranks}, ops={self.total_ops()})"


def save_traces(traces: TraceSet, path: str) -> int:
    """Write a trace set as gzip JSON-lines; returns compressed bytes."""
    with gzip.open(path, "wt", encoding="utf-8") as f:
        f.write(json.dumps({
            "format": FORMAT_VERSION,
            "job": traces.job_name,
            "nranks": traces.nranks,
        }) + "\n")
        for rank in range(traces.nranks):
            for op in traces.ops[rank]:
                f.write(json.dumps([rank, list(op)]) + "\n")
    import os

    return os.stat(path).st_size


def load_traces(path: str) -> TraceSet:
    """Read a trace set written by :func:`save_traces`."""
    with gzip.open(path, "rt", encoding="utf-8") as f:
        header = json.loads(f.readline())
        if header.get("format") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported trace format {header.get('format')!r} "
                f"(expected {FORMAT_VERSION})"
            )
        traces = TraceSet(header["nranks"], header.get("job", "traced"))
        for line in f:
            rank, op = json.loads(line)
            traces.append(rank, TraceOp(op[0], *op[1:]))
    return traces
