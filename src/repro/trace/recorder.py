"""Trace collection: the DUMPI-style tracing step of Table I.

:class:`TraceRecorder` proxies a :class:`~repro.mpi.process.RankCtx` and
records every operation the rank issues (point-to-point, collectives,
compute intervals) into a :class:`~repro.trace.format.TraceSet`.
``record_job`` runs a whole job once on a dedicated fabric to collect
its traces -- the analogue of running the instrumented application on a
real machine.
"""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.mpi.engine import JobSpec, SimMPI
from repro.mpi.types import Request
from repro.network.config import NetworkConfig
from repro.network.fabric import NetworkFabric
from repro.network.dragonfly import Dragonfly1D
from repro.trace.format import TraceOp, TraceSet


class TraceRecorder:
    """Records one rank's MPI operations while forwarding them.

    Supports the subset of the RankCtx surface the shipped workloads
    use.  Compute intervals are recorded with their duration, which is
    what lets the replay reproduce timing without the application.
    """

    def __init__(self, ctx, traces: TraceSet) -> None:
        self._ctx = ctx
        self._traces = traces
        self._rank = ctx.rank

    # -- identity (forwarded) ------------------------------------------------
    @property
    def rank(self) -> int:
        return self._ctx.rank

    @property
    def size(self) -> int:
        return self._ctx.size

    @property
    def params(self) -> dict[str, Any]:
        return self._ctx.params

    @property
    def now(self) -> float:
        return self._ctx.now

    @property
    def stats(self):
        return self._ctx.stats

    def _rec(self, name: str, *args) -> None:
        self._traces.append(self._rank, TraceOp(name, *args))

    # -- nonblocking primitives -------------------------------------------------
    def isend(self, dst: int, nbytes: int, tag: int = 0):
        self._rec("isend", dst, nbytes, tag)
        return self._ctx.isend(dst, nbytes, tag)

    def irecv(self, src: int = -1, tag: int = -1):
        self._rec("irecv", src, tag)
        return self._ctx.irecv(src, tag)

    def wait(self, request: Request):
        # waits are folded into waitall(1) on replay
        self._rec("waitall", 1)
        return self._ctx.wait(request)

    def waitall(self, requests):
        self._rec("waitall", len(requests))
        return self._ctx.waitall(requests)

    # -- blocking helpers ------------------------------------------------------------
    def send(self, dst: int, nbytes: int, tag: int = 0) -> Generator:
        self._rec("send", dst, nbytes, tag)
        return self._ctx.send(dst, nbytes, tag)

    def recv(self, src: int = -1, tag: int = -1) -> Generator:
        self._rec("recv", src, tag)
        return self._ctx.recv(src, tag)

    # -- timing -----------------------------------------------------------------------
    def compute(self, seconds: float):
        self._rec("compute", seconds)
        return self._ctx.compute(seconds)

    def sleep(self, seconds: float):
        self._rec("compute", seconds)
        return self._ctx.sleep(seconds)

    # -- collectives -------------------------------------------------------------------
    def barrier(self) -> Generator:
        self._rec("barrier")
        return self._ctx.barrier()

    def bcast(self, nbytes: int, root: int = 0) -> Generator:
        self._rec("bcast", nbytes, root)
        return self._ctx.bcast(nbytes, root)

    def reduce(self, nbytes: int, root: int = 0) -> Generator:
        self._rec("reduce", nbytes, root)
        return self._ctx.reduce(nbytes, root)

    def allreduce(self, nbytes: int, algorithm: str = "auto") -> Generator:
        self._rec("allreduce", nbytes)
        return self._ctx.allreduce(nbytes, algorithm)

    def allgather(self, nbytes: int) -> Generator:
        self._rec("allgather", nbytes)
        return self._ctx.allgather(nbytes)

    def alltoall(self, nbytes: int) -> Generator:
        self._rec("alltoall", nbytes)
        return self._ctx.alltoall(nbytes)

    # -- logging (forwarded, not traced: DUMPI does not trace app logs) ---------------
    def reset_counters(self) -> None:
        self._ctx.reset_counters()

    @property
    def elapsed_usecs(self) -> float:
        return self._ctx.elapsed_usecs

    def log(self, label: str, value: float) -> None:
        self._ctx.log(label, value)


def record_job(
    program: Callable,
    nranks: int,
    params: dict[str, Any] | None = None,
    job_name: str = "traced",
    until: float = 10.0,
    seed: int = 0,
) -> TraceSet:
    """Run ``program`` once on a private fabric, recording its traces.

    This is the "execute the application on a real system" step of
    trace-driven simulation: it requires a full run at the target rank
    count (the Table I "re-tracing" cost).
    """
    traces = TraceSet(nranks, job_name)
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=seed), routing="min")
    if nranks > fabric.topo.n_nodes:
        raise ValueError(
            f"tracing machine has {fabric.topo.n_nodes} nodes; cannot trace {nranks} ranks"
        )
    mpi = SimMPI(fabric)

    def traced_program(ctx):
        rec = TraceRecorder(ctx, traces)
        yield from program(rec)

    mpi.add_job(JobSpec(job_name, nranks, traced_program, list(range(nranks)), params or {}))
    mpi.run(until=until)
    if not mpi.all_finished():
        raise RuntimeError(f"tracing run of {job_name!r} did not finish by t={until}")
    return traces
