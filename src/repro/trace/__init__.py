"""Trace collection and replay (the paper's Table I baseline).

CODES supports trace-driven simulation from SST DUMPI traces; Table I
contrasts that mode with SWM skeletons and Union.  This package
implements the equivalent baseline for the reproduction:

* :class:`~repro.trace.recorder.TraceRecorder` -- wraps a rank context
  and records every MPI operation with its timing (the DUMPI analogue);
* :mod:`~repro.trace.format` -- a compact JSON-lines on-disk format;
* :func:`~repro.trace.replay.replay_program` -- a workload that replays
  a recorded trace through the simulator.

The package exists to *measure* Table I's trace-replay column: traces
are large (every event is stored), must be re-collected to change the
rank count, and replaying needs the whole trace in memory -- all
demonstrated by ``benchmarks/bench_table1.py`` and ``tests/trace``.
"""

from repro.trace.format import TraceOp, TraceSet, load_traces, save_traces
from repro.trace.recorder import TraceRecorder, record_job
from repro.trace.replay import replay_program, TraceScalingError

__all__ = [
    "TraceOp",
    "TraceSet",
    "load_traces",
    "save_traces",
    "TraceRecorder",
    "record_job",
    "replay_program",
    "TraceScalingError",
]
