"""I/O-heavy workload patterns (Section VII's motivating scenarios).

The paper's discussion section singles out two storage pressures of
converged HPC+ML systems:

* **checkpointing** -- HPC applications periodically flushing large
  state to storage (bursty, write-heavy, large sequential I/O);
* **ML training input** -- "read-intensive I/O of a large number of
  small files that need to be accessed in real-time during the training
  phases".

Both are expressed as ordinary rank programs so they co-schedule with
the communication workloads of Section IV-B; their storage traffic and
MPI traffic contend on the same simulated links.
"""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.storage.ops import IORead, read_file, write_file
from repro.workloads.base import workload_rng


def checkpointer(ctx: RankCtx):
    """Compute/checkpoint cycle: compute for ``interval_s``, then every
    rank writes a ``stripe_bytes`` stripe to its round-robin server.

    Params: ``storage`` (StorageSystem), ``iters``, ``interval_s``,
    ``stripe_bytes``.
    """
    p = ctx.params
    storage = p["storage"]
    iters = int(p.get("iters", 4))
    interval_s = float(p.get("interval_s", 1e-3))
    stripe = int(p.get("stripe_bytes", 1 << 20))
    n_srv = len(storage.servers)
    for _ in range(iters):
        yield ctx.compute(interval_s)
        yield from write_file(ctx, storage, server=ctx.rank % n_srv, nbytes=stripe)


def ml_reader(ctx: RankCtx):
    """Training-input pipeline: each step reads ``files_per_step`` small
    files from random servers (prefetched concurrently), computes for
    ``step_s``, then allreduces a gradient of ``gradient_bytes``.

    This is the converged pattern the paper's discussion motivates: the
    same job issues read-intensive small-file I/O *and* the periodic
    gradient allreduce of Section IV-B's ML skeletons.

    Params: ``storage``, ``steps``, ``files_per_step``, ``file_bytes``,
    ``step_s``, ``gradient_bytes``, ``seed``.
    """
    p = ctx.params
    storage = p["storage"]
    steps = int(p.get("steps", 4))
    files_per_step = int(p.get("files_per_step", 8))
    file_bytes = int(p.get("file_bytes", 128 << 10))
    step_s = float(p.get("step_s", 1e-3))
    gradient_bytes = int(p.get("gradient_bytes", 1 << 20))
    rng = workload_rng(ctx, salt=11)
    n_srv = len(storage.servers)
    for _ in range(steps):
        # Prefetch the step's input files concurrently.
        reqs = []
        for _ in range(files_per_step):
            req = yield IORead(storage, server=rng.randint(n_srv), nbytes=file_bytes)
            reqs.append(req)
        yield ctx.waitall(reqs)
        yield ctx.compute(step_s)
        yield from ctx.allreduce(gradient_bytes)


def io_benchmark(ctx: RankCtx):
    """IOR-style sequential bandwidth probe: each rank writes then reads
    back ``block_bytes`` in ``xfer_bytes`` transfers, with barriers
    between phases (the classic parallel-filesystem benchmark shape).

    Params: ``storage``, ``block_bytes``, ``xfer_bytes``.
    """
    p = ctx.params
    storage = p["storage"]
    block = int(p.get("block_bytes", 4 << 20))
    xfer = int(p.get("xfer_bytes", 1 << 20))
    n_srv = len(storage.servers)
    server = ctx.rank % n_srv
    ctx.reset_counters()
    for _ in range(max(1, block // xfer)):
        yield from write_file(ctx, storage, server=server, nbytes=xfer)
    yield from ctx.barrier()
    ctx.log("write_usecs", ctx.elapsed_usecs)
    ctx.reset_counters()
    for _ in range(max(1, block // xfer)):
        yield from read_file(ctx, storage, server=server, nbytes=xfer)
    yield from ctx.barrier()
    ctx.log("read_usecs", ctx.elapsed_usecs)
