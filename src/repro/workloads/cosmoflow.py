"""Cosmoflow: Union-translated skeleton accessor.

The program lives in :data:`repro.workloads.sources.COSMOFLOW_SOURCE`;
this module memoizes its translation and records the paper-scale
configuration (1,024 ranks, 28.15 MiB Allreduce every 129 ms).
"""

from __future__ import annotations

from repro.union.skeleton import Skeleton
from repro.union.translator import translate
from repro.workloads.sources import COSMOFLOW_SOURCE

#: Paper-scale parameters (Section IV-B).
COSMOFLOW_PAPER = {"nranks": 1024, "abytes": 29517414, "cmsecs": 129, "iters": 10}

_cached: Skeleton | None = None


def cosmoflow_skeleton() -> Skeleton:
    """Translate (once) and return the Cosmoflow Union skeleton."""
    global _cached
    if _cached is None:
        _cached = translate(COSMOFLOW_SOURCE, "cosmoflow")
    return _cached
