"""Hotspot synthetic background traffic.

The adversarial complement of uniform-random: every rank fires its
messages at a small set of *hot* destination ranks, concentrating load
on a few terminals (and, under minimal routing, a few links).  This is
the classic pattern for stressing adaptive routing and for loading a
fabric underneath measured applications in scenario specs.
"""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.workloads.base import workload_rng

#: Default configuration used by scenario background-traffic injectors.
HOTSPOT_DEFAULTS = {"msg_bytes": 10240, "interval_s": 1e-3, "iters": 0, "hot_ranks": 1}


def hotspot(ctx: RankCtx):
    """Fire-and-forget traffic aimed at the first ``hot_ranks`` ranks.

    Params: ``msg_bytes``, ``interval_s``, ``iters`` (0 = endless, until
    the simulation horizon), ``hot_ranks`` (how many of the lowest ranks
    are targets), ``seed``.  Hot ranks themselves also send (to another
    hot rank when there is one).  As with uniform-random, receives are
    never posted: deliveries are recorded at the destination NIC, which
    is all a background pattern needs.
    """
    p = ctx.params
    msg_bytes = int(p.get("msg_bytes", 10240))
    interval_s = float(p.get("interval_s", 1e-3))
    iters = int(p.get("iters", 0))
    hot = max(1, min(int(p.get("hot_ranks", 1)), ctx.size))
    rng = workload_rng(ctx, salt=11)
    it = 0
    while iters == 0 or it < iters:
        yield ctx.compute(interval_s)
        dst = rng.randint(hot) if hot > 1 else 0
        if dst == ctx.rank:
            # Never self-send: stay inside the hot set when it has
            # another member, else the lone hot rank sprays its neighbor.
            dst = (dst + 1) % hot if hot > 1 else (ctx.rank + 1) % ctx.size
        yield ctx.isend(dst, msg_bytes, tag=4)
        it += 1
