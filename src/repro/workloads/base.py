"""Shared helpers for SWM-style Python workloads."""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.pdes.rng import SplitMix


def grid_coords(rank: int, dims: tuple[int, ...]) -> tuple[int, ...]:
    """Coordinates of ``rank`` on a row-major Cartesian grid."""
    coords = []
    for d in dims:
        coords.append(rank % d)
        rank //= d
    return tuple(coords)


def grid_rank(coords: tuple[int, ...], dims: tuple[int, ...]) -> int:
    """Inverse of :func:`grid_coords`."""
    rank = 0
    stride = 1
    for c, d in zip(coords, dims):
        rank += (c % d) * stride
        stride *= d
    return rank


def torus_neighbors(rank: int, dims: tuple[int, ...]) -> list[int]:
    """The 2*len(dims) wrap-around neighbours of ``rank``."""
    coords = grid_coords(rank, dims)
    out = []
    for axis in range(len(dims)):
        for delta in (-1, 1):
            nc = list(coords)
            nc[axis] = (nc[axis] + delta) % dims[axis]
            out.append(grid_rank(tuple(nc), dims))
    return out


def check_grid(ctx: RankCtx, dims: tuple[int, ...], name: str) -> None:
    total = 1
    for d in dims:
        total *= d
    if total != ctx.size:
        raise ValueError(
            f"{name}: grid {'x'.join(map(str, dims))} = {total} ranks "
            f"but the job has {ctx.size}"
        )


def workload_rng(ctx: RankCtx, salt: int = 0) -> SplitMix:
    """Deterministic per-rank stream for a Python workload."""
    seed = int(ctx.params.get("seed", 0))
    return SplitMix(seed + salt, ctx.rank + 1)
