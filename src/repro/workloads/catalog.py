"""Workload catalog: Table III mixes at paper and mini scale.

``app_catalog(scale)`` returns per-application specs;
``build_jobs(workload, scale)`` assembles the Job list for one of the
paper's three hybrid workloads (plus per-app baselines).

Scales
------
* ``"paper"`` -- the exact Section IV-B rank counts and message sizes
  (constructible, used for configuration tables; simulating them in
  pure Python is not practical);
* ``"mini"`` -- rank counts scaled ~32x down and message sizes scaled so
  a sweep configuration simulates in seconds, preserving each
  application's *relative* communication intensity (who is intensive,
  who is small-message, who blocks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.union.manager import Job
from repro.workloads.alexnet import ALEXNET_PAPER, alexnet_skeleton
from repro.workloads.cosmoflow import COSMOFLOW_PAPER, cosmoflow_skeleton
from repro.workloads.lammps import LAMMPS_PAPER, lammps
from repro.workloads.milc import MILC_PAPER, milc
from repro.workloads.nearest_neighbor import NN_PAPER, nearest_neighbor
from repro.workloads.nekbone import NEKBONE_PAPER, nekbone
from repro.workloads.uniform_random import UR_PAPER, uniform_random


@dataclass
class AppSpec:
    """One application at one scale."""

    name: str
    kind: str  # "skeleton" | "program"
    nranks: int
    params: dict[str, Any] = field(default_factory=dict)
    skeleton_factory: Callable | None = None
    program: Callable | None = None
    ml: bool = False  # ML vs HPC classification used in the analysis

    def to_job(self) -> Job:
        if self.kind == "skeleton":
            assert self.skeleton_factory is not None
            return Job(self.name, self.nranks, skeleton=self.skeleton_factory(), params=dict(self.params))
        assert self.program is not None
        return Job(self.name, self.nranks, program=self.program, params=dict(self.params))


@dataclass
class WorkloadSpec:
    """One Table III row."""

    name: str
    apps: list[str]


#: Table III: the three hybrid workloads.
WORKLOADS: dict[str, WorkloadSpec] = {
    "workload1": WorkloadSpec("workload1", ["cosmoflow", "alexnet", "lammps", "nn", "ur"]),
    "workload2": WorkloadSpec("workload2", ["cosmoflow", "alexnet", "lammps", "milc", "nn"]),
    "workload3": WorkloadSpec("workload3", ["cosmoflow", "alexnet", "nekbone", "milc", "nn"]),
}

#: Applications appearing in the Figure 7/9 panels.
PANEL_APPS = ["lammps", "nekbone", "milc", "alexnet", "cosmoflow"]


def _paper_catalog() -> dict[str, AppSpec]:
    return {
        "cosmoflow": AppSpec(
            "cosmoflow", "skeleton", COSMOFLOW_PAPER["nranks"],
            {k: v for k, v in COSMOFLOW_PAPER.items() if k != "nranks"},
            skeleton_factory=cosmoflow_skeleton, ml=True,
        ),
        "alexnet": AppSpec(
            "alexnet", "skeleton", ALEXNET_PAPER["nranks"],
            {k: v for k, v in ALEXNET_PAPER.items() if k != "nranks"},
            skeleton_factory=alexnet_skeleton, ml=True,
        ),
        "nn": AppSpec("nn", "program", 512, dict(NN_PAPER), program=nearest_neighbor),
        "milc": AppSpec("milc", "program", 4096, dict(MILC_PAPER), program=milc),
        "nekbone": AppSpec("nekbone", "program", 2197, dict(NEKBONE_PAPER), program=nekbone),
        "lammps": AppSpec("lammps", "program", 2048, dict(LAMMPS_PAPER), program=lammps),
        "ur": AppSpec("ur", "program", 4096, dict(UR_PAPER), program=uniform_random),
    }


def _mini_catalog() -> dict[str, AppSpec]:
    """~32x smaller rank counts; sizes/intervals tuned so one sweep
    configuration runs in seconds while preserving relative intensity."""
    return {
        # ML apps: frequent heavy bursts so their traffic overlaps the
        # HPC apps throughout the horizon (paper: 28.15 MiB / 129 ms and
        # 235 MiB / update at 512-4096 ranks saturate the shared links).
        "cosmoflow": AppSpec(
            "cosmoflow", "skeleton", 24,
            {"iters": 10, "abytes": 768 * 1024, "cmsecs": 1},
            skeleton_factory=cosmoflow_skeleton, ml=True,
        ),
        "alexnet": AppSpec(
            "alexnet", "skeleton", 16,
            {
                "warmups": 8, "updates": 8, "tail": 2,
                "gbytes": 1536 * 1024, "nar": 2, "negbytes": 25, "cmsecs": 0.8,
            },
            skeleton_factory=alexnet_skeleton, ml=True,
        ),
        # HPC apps: many light iterations so they stay active (and thus
        # exposed to interference) for most of the horizon.
        "nn": AppSpec(
            "nn", "program", 16,
            {"dims": (4, 2, 2), "msg_bytes": 32768, "iters": 16, "compute_s": 0.3e-3},
            program=nearest_neighbor,
        ),
        "milc": AppSpec(
            "milc", "program", 16,
            {"dims": (2, 2, 2, 2), "msg_bytes": 65536, "iters": 12, "compute_s": 0.3e-3},
            program=milc,
        ),
        "nekbone": AppSpec(
            "nekbone", "program", 27,
            {"dims": (3, 3, 3), "msg_sizes": (8, 512, 4096, 20480), "iters": 24, "compute_s": 0.25e-3},
            program=nekbone,
        ),
        "lammps": AppSpec(
            "lammps", "program", 16,
            {"dims": (4, 2, 2), "msg_sizes": (4, 512, 4096, 16384), "iters": 24,
             "compute_s": 0.25e-3, "allreduce_every": 2},
            program=lammps,
        ),
        "ur": AppSpec(
            "ur", "program", 32,
            {"msg_bytes": 10240, "interval_s": 0.5e-3, "iters": 0},
            program=uniform_random,
        ),
    }


def app_catalog(scale: str = "mini") -> dict[str, AppSpec]:
    """Per-application specs at the requested scale."""
    if scale == "paper":
        return _paper_catalog()
    if scale == "mini":
        return _mini_catalog()
    raise ValueError(f"unknown scale {scale!r}; expected 'paper' or 'mini'")


def build_jobs(workload: str, scale: str = "mini") -> list[Job]:
    """Jobs for one Table III workload at the requested scale."""
    try:
        spec = WORKLOADS[workload]
    except KeyError:
        raise KeyError(f"unknown workload {workload!r}; have {sorted(WORKLOADS)}") from None
    catalog = app_catalog(scale)
    return [catalog[name].to_job() for name in spec.apps]


def build_baseline_job(app: str, scale: str = "mini") -> Job:
    """A single application running alone (the grey baseline boxes)."""
    return app_catalog(scale)[app].to_job()
