"""Uniform-random (UR) synthetic background traffic (Section IV-B).

Workload1's synthetic component: each rank sends a 10 KiB message to a
uniformly random destination every 1 ms.  Runs for ``iters`` rounds, or
forever (until the simulation horizon) when ``iters`` is 0 -- the
paper's background traffic has no natural end.
"""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.workloads.base import workload_rng

#: Paper-scale configuration (4,096 ranks in Workload1).
UR_PAPER = {"msg_bytes": 10240, "interval_s": 1e-3, "iters": 0}


def uniform_random(ctx: RankCtx):
    """Fire-and-forget random-destination traffic.

    Params: ``msg_bytes``, ``interval_s``, ``iters`` (0 = endless),
    ``seed``.  Receives are intentionally never posted: deliveries are
    recorded at the destination NIC either way, which is exactly what a
    background-traffic pattern needs.
    """
    p = ctx.params
    msg_bytes = int(p.get("msg_bytes", 10240))
    interval_s = float(p.get("interval_s", 1e-3))
    iters = int(p.get("iters", 0))
    rng = workload_rng(ctx, salt=7)
    n = ctx.size
    it = 0
    while iters == 0 or it < iters:
        yield ctx.compute(interval_s)
        dst = rng.randint(n - 1)
        if dst >= ctx.rank:
            dst += 1  # uniform over all ranks except self
        yield ctx.isend(dst, msg_bytes, tag=3)
        it += 1
