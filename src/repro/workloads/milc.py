"""MILC SWM skeleton (Section IV-B).

MIMD Lattice Computation: 4D SU(3) lattice gauge theory.  Communication
pattern: each rank exchanges nonblocking messages of ~486 KiB with its
8 neighbours on a 4D torus every iteration.  Paper configuration:
4,096 ranks.
"""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.workloads.base import check_grid, torus_neighbors

#: Paper-scale configuration (486 KiB messages on an 8^4 torus).
MILC_PAPER = {"dims": (8, 8, 8, 8), "msg_bytes": 497664, "iters": 50, "compute_s": 0.5e-3}


def milc(ctx: RankCtx):
    """4D halo exchange with nonblocking send/recv.

    Params: ``dims`` (4-tuple), ``msg_bytes``, ``iters``, ``compute_s``.
    """
    p = ctx.params
    dims = tuple(p.get("dims", (8, 8, 8, 8)))
    if len(dims) != 4:
        raise ValueError(f"milc needs 4 grid dimensions, got {dims}")
    msg_bytes = int(p.get("msg_bytes", 497664))
    iters = int(p.get("iters", 50))
    compute_s = float(p.get("compute_s", 0.5e-3))
    check_grid(ctx, dims, "milc")
    neighbors = torus_neighbors(ctx.rank, dims)
    for it in range(iters):
        yield ctx.compute(compute_s)
        reqs = []
        for nb in neighbors:
            reqs.append((yield ctx.irecv(nb, tag=it)))
        for nb in neighbors:
            reqs.append((yield ctx.isend(nb, msg_bytes, tag=it)))
        yield ctx.waitall(reqs)
