"""Nekbone SWM skeleton (Section IV-B).

Conjugate-gradient Poisson solve from Nek5000: each CG iteration does a
nonblocking neighbour (gather-scatter) exchange with messages spanning
8 B .. 165 KiB, followed by the two tiny 8-byte Allreduce reductions of
the CG dot products -- "a large number of MPI collective operations with
small 8-byte messages."  Paper configuration: 2,197 ranks (13^3).
"""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.workloads.base import check_grid, torus_neighbors

#: Paper-scale configuration.
NEKBONE_PAPER = {
    "dims": (13, 13, 13),
    "msg_sizes": (8, 1024, 16384, 168960),
    "iters": 60,
    "compute_s": 0.2e-3,
}


def nekbone(ctx: RankCtx):
    """CG iteration: small-message halo exchange + 2 x 8-byte allreduce.

    Params: ``dims`` (3-tuple), ``msg_sizes`` (cycled per iteration),
    ``iters``, ``compute_s``.
    """
    p = ctx.params
    dims = tuple(p.get("dims", (13, 13, 13)))
    if len(dims) != 3:
        raise ValueError(f"nekbone needs 3 grid dimensions, got {dims}")
    msg_sizes = tuple(int(s) for s in p.get("msg_sizes", (8, 1024, 16384, 168960)))
    iters = int(p.get("iters", 60))
    compute_s = float(p.get("compute_s", 0.2e-3))
    check_grid(ctx, dims, "nekbone")
    neighbors = torus_neighbors(ctx.rank, dims)
    for it in range(iters):
        yield ctx.compute(compute_s)
        size = msg_sizes[it % len(msg_sizes)]
        reqs = []
        for nb in neighbors:
            reqs.append((yield ctx.irecv(nb, tag=it)))
        for nb in neighbors:
            reqs.append((yield ctx.isend(nb, size, tag=it)))
        yield ctx.waitall(reqs)
        # CG dot products: two scalar allreduces per iteration.
        yield from ctx.allreduce(8)
        yield from ctx.allreduce(8)
