"""AlexNet/Horovod: Union-translated skeleton accessor.

The program encodes the Figure 6 control-flow graph (see
:data:`repro.workloads.sources.ALEXNET_SOURCE`).  The paper's absolute
event counts (Table IV: 1969 bcasts / 1958 allreduces) came from an
irregular DUMPI trace we do not have; the encoded structure yields 1953
bcasts / 1717 allreduces at the default parameters -- same shape, and
(the actual claim under test) identical between application and
skeleton.  DESIGN.md documents this substitution.
"""

from __future__ import annotations

from repro.union.skeleton import Skeleton
from repro.union.translator import translate
from repro.workloads.sources import ALEXNET_SOURCE

#: Paper-scale parameters (Section IV-B): 512 ranks, 235 MiB per update.
ALEXNET_PAPER = {
    "nranks": 512,
    "warmups": 1092,
    "updates": 856,
    "tail": 5,
    "gbytes": 246415360,
    "nar": 2,
    "negbytes": 25,
    "cmsecs": 25,
}

_cached: Skeleton | None = None


def alexnet_skeleton() -> Skeleton:
    """Translate (once) and return the AlexNet Union skeleton."""
    global _cached
    if _cached is None:
        _cached = translate(ALEXNET_SOURCE, "alexnet")
    return _cached
