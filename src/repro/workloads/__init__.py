"""The paper's workloads (Section IV-B).

Two ML applications written in coNCePTuaL and run through Union
(:mod:`repro.workloads.sources`), three SWM-style HPC skeletons
(MILC, Nekbone, LAMMPS), and three synthetics (3D nearest neighbour,
uniform random, hotspot).  :mod:`repro.workloads.catalog` assembles them
into the paper's Workload1/2/3 mixes (Table III) at paper or mini scale;
the synthetics double as scenario background-traffic injectors.
"""

from repro.workloads.sources import (
    ALEXNET_SOURCE,
    COSMOFLOW_SOURCE,
    HOTSPOT_SOURCE,
    PINGPONG_SOURCE,
    UNIFORM_RANDOM_SOURCE,
)
from repro.workloads.cosmoflow import cosmoflow_skeleton, COSMOFLOW_PAPER
from repro.workloads.alexnet import alexnet_skeleton, ALEXNET_PAPER
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.milc import milc
from repro.workloads.nekbone import nekbone
from repro.workloads.lammps import lammps
from repro.workloads.hotspot import hotspot
from repro.workloads.uniform_random import uniform_random
from repro.workloads.io_patterns import checkpointer, io_benchmark, ml_reader
from repro.workloads.catalog import WORKLOADS, AppSpec, WorkloadSpec, build_jobs, app_catalog

__all__ = [
    "COSMOFLOW_SOURCE",
    "ALEXNET_SOURCE",
    "HOTSPOT_SOURCE",
    "PINGPONG_SOURCE",
    "UNIFORM_RANDOM_SOURCE",
    "cosmoflow_skeleton",
    "COSMOFLOW_PAPER",
    "alexnet_skeleton",
    "ALEXNET_PAPER",
    "nearest_neighbor",
    "milc",
    "nekbone",
    "lammps",
    "hotspot",
    "uniform_random",
    "checkpointer",
    "io_benchmark",
    "ml_reader",
    "WORKLOADS",
    "AppSpec",
    "WorkloadSpec",
    "build_jobs",
    "app_catalog",
]
