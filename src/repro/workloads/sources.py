"""coNCePTuaL sources for the Union-translated applications.

The two ML applications of Section IV-B are *written in the DSL* and run
through the Union pipeline, exactly as in the paper.  Parameters default
to the paper-scale values; the mini-scale catalog overrides them.
"""

# The paper's Figure 1 program (ping-pong latency test), verbatim except
# for whitespace.  Used by the quickstart example and the parser tests.
PINGPONG_SOURCE = """\
# A ping-pong latency test written in coNCePTuaL
Require language version "1.5".

# Parse command line.
reps is "Number of repetitions" and comes from "--reps" or "-r" with default 1000.
msgsize is "Message size of bytes to transmit" and comes from "--msgsize" or "-m" with default 1024.

Assert that "the latency test requires at least two tasks" with num_tasks>=2.

# Perform the test.
For reps repetitions {
  task 0 resets its counters then
  task 0 sends a msgsize byte message to task 1 then
  task 1 sends a msgsize byte message to task 0 then
  task 0 logs the msgsize as "Bytes" and the median of elapsed_usecs/2 as "1/2 RTT (usecs)"
} then
task 0 computes aggregates
"""

# Cosmoflow (Mathuriya et al., SC'18 as cited): distributed training
# dominated by periodic gradient Allreduce.  Paper configuration: 1,024
# ranks, 28.15 MiB Allreduce every 129 ms.
COSMOFLOW_SOURCE = """\
# Cosmoflow: periodic gradient all-reduce (Section IV-B).
Require language version "1.5".

iters is "Number of training steps" and comes from "--iters" with default 10.
abytes is "Allreduce payload in bytes" and comes from "--abytes" with default 29517414.
cmsecs is "Compute interval in milliseconds" and comes from "--cmsecs" with default 129.

Assert that "cosmoflow needs at least two workers" with num_tasks>=2.

For iters repetitions {
  all tasks compute for cmsecs milliseconds then
  all tasks reduce an abytes byte value to all tasks
}
"""

# AlexNet via Horovod: the control-flow graph of the paper's Figure 6 --
# a broadcast warm-up loop, a gradient-update loop whose iterations
# interleave small negotiation broadcasts with the large gradient
# allreduces, and a short shutdown loop.  Paper-scale counts came from a
# DUMPI trace of a real 512-node run; the defaults below encode the
# published structure (1092 warm-up broadcasts, 856 updates totalling
# 235 MiB of gradients each, 5 tail iterations).
ALEXNET_SOURCE = """\
# AlexNet/Horovod communication skeleton (Figure 6 control flow).
Require language version "1.5".

warmups is "Warm-up negotiation broadcasts" and comes from "--warmups" with default 1092.
updates is "Gradient updates" and comes from "--updates" with default 856.
tail is "Shutdown iterations" and comes from "--tail" with default 5.
gbytes is "Gradient bytes per update" and comes from "--gbytes" with default 246415360.
nar is "Allreduce calls per update" and comes from "--nar" with default 2.
negbytes is "Negotiation broadcast size" and comes from "--negbytes" with default 25.
cmsecs is "Compute milliseconds per update" and comes from "--cmsecs" with default 25.

Assert that "alexnet needs at least two workers" with num_tasks>=2.

For warmups repetitions {
  task 0 multicasts a 4 byte message to all other tasks
} then
For updates repetitions {
  task 0 multicasts a negbytes byte message to all other tasks then
  all tasks compute for cmsecs milliseconds then
  For nar repetitions {
    all tasks reduce a gbytes/nar byte value to all tasks
  }
} then
For tail repetitions {
  all tasks reduce a 4 byte value to all tasks then
  task 0 multicasts a 4 byte message to all other tasks
}
"""

# Hotspot background traffic, as a DSL program (scenario traffic
# injectors use the SWM-style generator in hotspot.py; this source is
# the same pattern expressed through the full Union pipeline).
HOTSPOT_SOURCE = """\
# Hotspot synthetic traffic: everyone hammers task 0.
Require language version "1.5".

iters is "Number of send rounds" and comes from "--iters" with default 100.
msgsize is "Message size in bytes" and comes from "--msgsize" with default 10240.
imsecs is "Injection interval in milliseconds" and comes from "--imsecs" with default 1.

Assert that "a hotspot needs a non-target sender" with num_tasks>=2.

For iters repetitions {
  all tasks compute for imsecs milliseconds then
  all tasks t such that t>0 sends a msgsize byte nonblocking message to task 0 then
  all tasks await completion
}
"""

# Uniform-random background traffic, as a DSL program (the sweeps use
# the SWM-style generator in uniform_random.py; this source exists to
# exercise random_task through the full Union pipeline).
UNIFORM_RANDOM_SOURCE = """\
# Uniform-random synthetic traffic.
Require language version "1.5".

iters is "Number of send rounds" and comes from "--iters" with default 100.
msgsize is "Message size in bytes" and comes from "--msgsize" with default 10240.
imsecs is "Injection interval in milliseconds" and comes from "--imsecs" with default 1.

For iters repetitions {
  all tasks compute for imsecs milliseconds then
  all tasks t sends a msgsize byte nonblocking message to task random_task(0, num_tasks-1) then
  all tasks await completion
}
"""
