"""Nearest Neighbor (NN) synthetic kernel (Section IV-B).

"The processes are formed into a 3D Cartesian grid.  In each iteration,
every process communicates with neighbors in each dimension" -- the
common halo-exchange kernel of AMG, HACC and friends.  Paper
configuration: 512 ranks, 128 KiB nonblocking sends/receives.
"""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.workloads.base import check_grid, torus_neighbors

#: Paper-scale configuration.
NN_PAPER = {"dims": (8, 8, 8), "msg_bytes": 131072, "iters": 100, "compute_s": 0.2e-3}


def nearest_neighbor(ctx: RankCtx):
    """3D halo exchange with nonblocking send/recv (wrap-around grid).

    Params: ``dims`` (3-tuple), ``msg_bytes``, ``iters``, ``compute_s``.
    """
    p = ctx.params
    dims = tuple(p.get("dims", (8, 8, 8)))
    if len(dims) != 3:
        raise ValueError(f"nearest_neighbor needs 3 grid dimensions, got {dims}")
    msg_bytes = int(p.get("msg_bytes", 131072))
    iters = int(p.get("iters", 100))
    compute_s = float(p.get("compute_s", 0.2e-3))
    check_grid(ctx, dims, "nearest_neighbor")
    neighbors = torus_neighbors(ctx.rank, dims)
    for it in range(iters):
        yield ctx.compute(compute_s)
        reqs = []
        for nb in neighbors:
            reqs.append((yield ctx.irecv(nb, tag=it)))
        for nb in neighbors:
            reqs.append((yield ctx.isend(nb, msg_bytes, tag=it)))
        yield ctx.waitall(reqs)
