"""LAMMPS SWM skeleton (Section IV-B).

Classical molecular dynamics: per timestep, ghost-atom exchange along
each dimension using *blocking* sends paired with nonblocking receives
(message sizes 4 B .. 135 KiB), plus small-message Allreduce calls for
global thermodynamic quantities.  The blocking sends are what make
LAMMPS the most interference-sensitive application in the paper's
sweep.  Paper configuration: 2,048 ranks.
"""

from __future__ import annotations

from repro.mpi.process import RankCtx
from repro.workloads.base import check_grid, torus_neighbors

#: Paper-scale configuration.
LAMMPS_PAPER = {
    "dims": (16, 16, 8),
    "msg_sizes": (4, 2048, 32768, 138240),
    "iters": 60,
    "compute_s": 0.3e-3,
    "allreduce_every": 2,
}


def lammps(ctx: RankCtx):
    """MD timestep: per-dimension blocking-send/irecv exchange + allreduce.

    Params: ``dims`` (3-tuple), ``msg_sizes`` (cycled), ``iters``,
    ``compute_s``, ``allreduce_every``.
    """
    p = ctx.params
    dims = tuple(p.get("dims", (16, 16, 8)))
    if len(dims) != 3:
        raise ValueError(f"lammps needs 3 grid dimensions, got {dims}")
    msg_sizes = tuple(int(s) for s in p.get("msg_sizes", (4, 2048, 32768, 138240)))
    iters = int(p.get("iters", 60))
    compute_s = float(p.get("compute_s", 0.3e-3))
    allreduce_every = int(p.get("allreduce_every", 2))
    check_grid(ctx, dims, "lammps")
    neighbors = torus_neighbors(ctx.rank, dims)
    for it in range(iters):
        yield ctx.compute(compute_s)
        size = msg_sizes[it % len(msg_sizes)]
        # Ghost exchange: post all receives, then *blocking* sends.
        rreqs = []
        for nb in neighbors:
            rreqs.append((yield ctx.irecv(nb, tag=it)))
        for nb in neighbors:
            yield from ctx.send(nb, size, tag=it)
        yield ctx.waitall(rreqs)
        if allreduce_every and it % allreduce_every == 0:
            yield from ctx.allreduce(8)
