"""Figure 7: maximum message-latency distributions per application.

For every panel application (LAMMPS, Nekbone, MILC, AlexNet, Cosmoflow)
this prints the boxplot five-number summary (+ mean, the paper's red
square) of per-rank maximum message latency, for each
placement-routing combination on both systems, for the baseline and
every Table III workload containing the application.

Shape checks (the paper's Section VI-A findings, at mini scale):

* the largest latency inflations appear under random-node placement
  (the paper: "maximum message latency delays are always observed with
  the random node placement");
* within the HPC applications, the small-message apps (LAMMPS, Nekbone;
  paper: up to 63x) suffer larger relative latency slowdown than the
  intensive MILC (paper: <= 11% except one case).  The ML apps are
  excluded from this ordering: their tiny negotiation broadcasts also
  inflate strongly (the paper itself reports 200% for AlexNet under
  RN-ADP), so they do not separate cleanly at mini scale.
"""

import numpy as np

from benchmarks.conftest import banner, sweep_combos, report
from benchmarks.sweep_cache import get_sweep
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import slowdown
from repro.harness.report import format_seconds, render_table
from repro.harness.sweeps import panel_stats, workloads_of
from repro.workloads.catalog import PANEL_APPS


def _box_cell(stats):
    b = stats.max_latency_box
    return (f"[{format_seconds(b.minimum)} {format_seconds(b.q1)} "
            f"{format_seconds(b.median)} {format_seconds(b.q3)} "
            f"{format_seconds(b.maximum)}] mean={format_seconds(b.mean)}")


def test_benchmark_one_sweep_cell(benchmark):
    """Time one representative cell of the Figure 7 sweep."""
    from repro.harness.experiment import clear_cache

    def cell():
        clear_cache()
        return run_experiment(ExperimentConfig(
            network="1d", workload="workload3", placement="rg", routing="adp", seed=1,
        ))

    res = benchmark.pedantic(cell, rounds=1, iterations=1)
    assert res.apps


def test_benchmark_fig7(benchmark):
    sweep = benchmark.pedantic(get_sweep, rounds=1, iterations=1)
    combos = sweep_combos()

    rn_is_worst_votes = 0
    votes_total = 0
    per_app_rel_slowdown = {}

    for app in PANEL_APPS:
        report(banner(f"Figure 7 ({app}): max message latency boxes"))
        rows = []
        mix_means = {}
        base_means = {}
        for network in ("1d", "2d"):
            for combo in combos:
                cell = panel_stats(sweep, app, network, combo)
                row = [network, combo]
                base = cell.get("baseline")
                row.append(_box_cell(base) if base else "-")
                worst_mix = 0.0
                for w in workloads_of(app):
                    s = cell.get(w)
                    row.append(_box_cell(s) if s else "-")
                    if s:
                        worst_mix = max(worst_mix, s.max_latency_box.mean)
                rows.append(row)
                if base and worst_mix:
                    mix_means[(network, combo)] = worst_mix
                    base_means[(network, combo)] = base.max_latency_box.mean
        report(render_table(["net", "combo", "baseline"] + workloads_of(app), rows))

        # Shape: where is the worst inflation?  Count RN among the worst combos.
        for network in ("1d", "2d"):
            worst_combo = max(
                (c for (n, c) in mix_means if n == network),
                key=lambda c: mix_means[(network, c)] / max(base_means[(network, c)], 1e-12),
                default=None,
            )
            if worst_combo:
                votes_total += 1
                rn_is_worst_votes += worst_combo.startswith("rn")
        rel = [
            slowdown(mix_means[k], base_means[k])
            for k in mix_means
            if base_means[k] > 0
        ]
        per_app_rel_slowdown[app] = float(np.mean(rel)) if rel else 0.0

    report(banner("Figure 7 shape summary"))
    report(render_table(
        ["app", "mean relative slowdown of mean max-latency"],
        [(a, f"{v:+.1%}") for a, v in per_app_rel_slowdown.items()],
    ))
    report(f"worst-inflation combo is RN in {rn_is_worst_votes}/{votes_total} panels")

    # Paper shape (within HPC apps): small-message lammps/nekbone are hit
    # harder than the communication-intensive milc.
    sensitive = max(per_app_rel_slowdown["lammps"], per_app_rel_slowdown["nekbone"])
    assert sensitive > per_app_rel_slowdown["milc"]
    # Interference inflates latency for every app on average.
    assert all(v > 0 for v in per_app_rel_slowdown.values())
    # RN should be among the worst placements in a majority of panels.
    assert rn_is_worst_votes * 2 >= votes_total
