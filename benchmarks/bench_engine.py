"""Engine and design-choice ablations (DESIGN.md Section 4).

Not a paper table -- these benches quantify the substrate:

* PDES scheduler comparison on PHOLD (sequential / conservative /
  Time Warp), the ROSS-layer ablation;
* raw network simulator throughput (events/second), tracked over time
  in ``BENCH_engine.json`` via ``scripts/bench.sh`` (see
  ``benchmarks/throughput.py`` for the metric definitions);
* allreduce algorithm ablation (ring vs recursive doubling) at the
  message size regimes of the ML workloads;
* adaptive-routing bias ablation under a permutation hotspot.
"""

import pytest

from benchmarks.conftest import report

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.pdes.conservative import ConservativeEngine
from repro.pdes.sequential import SequentialEngine
from repro.pdes.timewarp import TimeWarpEngine

from tests.pdes.phold import build_phold, fingerprint


@pytest.mark.parametrize(
    "engine_factory",
    [
        pytest.param(SequentialEngine, id="sequential"),
        pytest.param(lambda: ConservativeEngine(lookahead=0.5, n_partitions=4), id="conservative"),
        pytest.param(lambda: TimeWarpEngine(gvt_interval=16), id="timewarp"),
    ],
)
def test_benchmark_phold(benchmark, engine_factory):
    def run():
        eng = engine_factory()
        lps = build_phold(eng, n_lps=16, seed=7)
        eng.run(until=200.0)
        return eng, lps

    eng, lps = benchmark.pedantic(run, rounds=3, iterations=1)
    # All engines commit the same events.
    ref = SequentialEngine()
    ref_lps = build_phold(ref, n_lps=16, seed=7)
    ref.run(until=200.0)
    assert fingerprint(lps) == fingerprint(ref_lps)


def _permutation_traffic(ctx):
    """Every rank streams to a fixed far partner: a hotspot pattern."""
    partner = (ctx.rank + ctx.size // 2) % ctx.size
    for it in range(20):
        req = yield ctx.isend(partner, 65536, tag=it)
        yield ctx.wait(req)


def _run_permutation(routing: str, bias: float) -> float:
    fabric = NetworkFabric(
        Dragonfly1D.mini(),
        NetworkConfig(seed=1, adaptive_bias=bias),
        routing=routing,
    )
    mpi = SimMPI(fabric)
    nranks = 32
    # Two groups only: maximal pressure on one group-pair's global links.
    nodes = list(range(16)) + list(range(16, 32))
    mpi.add_job(JobSpec("perm", nranks, _permutation_traffic, nodes))
    mpi.run(until=1.0)
    res = mpi.results()[0]
    return res.max_comm_time()


def test_benchmark_network_throughput(benchmark):
    """Raw events/second of the network core: the fabric-level
    permutation packet storm from the tracked throughput trajectory."""
    from benchmarks.throughput import REFERENCE_EVENTS, run_network_throughput

    events = benchmark.pedantic(run_network_throughput, rounds=3, iterations=1)
    best = benchmark.stats.stats.min
    ref = REFERENCE_EVENTS["network_throughput"]
    report(
        f"\nnetwork-throughput storm: {events} events in {best:.3f}s"
        f" -> {events / best:,.0f} ev/s"
        f" ({ref / best:,.0f} seed-reference ev/s; seed graph: {ref} events)"
    )
    # The busy_until forwarding path must keep the event graph well under
    # the seed model's 2-events-per-transmission traffic.
    assert events < 0.75 * ref
    assert events > 10_000


def test_benchmark_mpi_workload_throughput(benchmark):
    """Events per second of the packet-level model under a co-scheduled
    MPI workload (full stack)."""

    def run():
        fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=2), routing="adp")
        mpi = SimMPI(fabric)

        def allred(ctx):
            for _ in range(3):
                yield ctx.compute(1e-4)
                yield from ctx.allreduce(1 << 19)

        mpi.add_job(JobSpec("a", 32, allred, list(range(32))))
        mpi.run(until=1.0)
        return fabric.engine.events_processed

    events = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"\nnetwork model events committed: {events}")
    assert events > 10_000


@pytest.mark.parametrize("algorithm", ["ring", "rd"])
def test_benchmark_allreduce_algorithm(benchmark, algorithm):
    """Ablation: ring vs recursive doubling at ML message sizes."""

    def run():
        fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=3), routing="min")
        mpi = SimMPI(fabric)

        def prog(ctx):
            yield from ctx.allreduce(1 << 20, algorithm=algorithm)

        mpi.add_job(JobSpec("ar", 16, prog, list(range(16))))
        mpi.run(until=5.0)
        return mpi.results()[0].max_comm_time()

    t = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"\nallreduce[{algorithm}] 1 MiB x 16 ranks: max comm time {t * 1e3:.3f} ms")
    assert t > 0


def test_benchmark_packet_size_ablation(benchmark):
    """Fidelity/cost knob of the packet-level substitution for CODES's
    flit-level model: smaller packets -> finer link interleaving and
    more events; the measured latency converges as packets shrink."""

    def run_with(packet_bytes):
        fabric = NetworkFabric(
            Dragonfly1D.mini(),
            NetworkConfig(seed=5, packet_bytes=packet_bytes),
            routing="adp",
        )
        mpi = SimMPI(fabric)

        def prog(ctx):
            for _ in range(2):
                yield ctx.compute(1e-5)
                yield from ctx.allreduce(1 << 18)

        mpi.add_job(JobSpec("a", 16, prog, list(range(16))))
        mpi.run(until=2.0)
        res = mpi.results()[0]
        assert res.finished
        return res.max_comm_time(), fabric.engine.events_processed

    def sweep():
        return {p: run_with(p) for p in (256, 1024, 4096, 16384)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("\nPacket-size ablation (256 KiB allreduce x 16 ranks):")
    for p, (t, ev) in results.items():
        report(f"  {p:6d} B packets: max comm time {t * 1e3:8.3f} ms, {ev:8d} events")
    # Event count scales with segmentation granularity.
    events = [ev for _, ev in results.values()]
    assert all(a > b for a, b in zip(events, events[1:]))
    # Latency estimates stay in one regime across the sweep (store-and-
    # forward cost shifts them, but not by orders of magnitude).
    times = [t for t, _ in results.values()]
    assert max(times) < 10 * min(times)


def test_benchmark_adaptive_bias_ablation(benchmark):
    """UGAL bias sweep under a two-group hotspot, plus MIN reference."""

    def sweep():
        out = {"min": _run_permutation("min", 1.0)}
        for bias in (0.0, 1.0, 4.0, 16.0):
            out[f"adp(bias={bias})"] = _run_permutation("adp", bias)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("\nAdaptive-bias ablation (hotspot permutation, max comm time):")
    for k, v in results.items():
        report(f"  {k:16s} {v * 1e3:8.3f} ms")
    # Adaptive with a moderate bias should beat minimal routing on a
    # hotspot (the Section VI 'adaptive avoids hot-spots' expectation).
    best_adp = min(v for k, v in results.items() if k.startswith("adp"))
    assert best_adp <= results["min"] * 1.05
