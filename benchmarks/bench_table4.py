"""Table IV + Figure 6: AlexNet validation -- MPI event counts and
control flow, application vs Union skeleton.

Runs the full Figure 6 loop structure (1092 warm-up broadcasts, 856
gradient updates, 5 tail iterations) at 64 ranks and checks that the
skeleton's event counts equal the application's for every MPI function,
and that per-rank control-flow traces are identical.

The paper's absolute counts (1969 bcasts / 1958 allreduces) came from an
irregular DUMPI trace; our encoded structure gives 1953 bcasts / 1717
allreduces per rank-group -- same shape, and the equality claim (the
thing Table IV demonstrates) is exact.
"""

from benchmarks.conftest import banner, report
from repro.harness.report import render_table
from repro.union.validation import validate_skeleton
from repro.workloads.alexnet import alexnet_skeleton

N_TASKS = 64
PARAMS = {"warmups": 1092, "updates": 856, "tail": 5}


def test_benchmark_table4(benchmark):
    rep = benchmark.pedantic(
        lambda: validate_skeleton(alexnet_skeleton(), N_TASKS, PARAMS, record_trace=True),
        rounds=1,
        iterations=1,
    )
    report(banner(f"Table IV: AlexNet MPI event count (application vs skeleton, {N_TASKS} ranks)"))
    report(render_table(["Function", "Application", "Union Skeleton"], rep.table4_rows()))
    rows = {fn: (a, s) for fn, a, s in rep.table4_rows()}
    report("\nPaper (512 ranks, traced): MPI_Init 512, MPI_Bcast 1969, "
          "MPI_Allreduce 1958, MPI_Finalize 512")
    report(f"Ours ({N_TASKS} ranks, structural): per-rank Bcast "
          f"{rows['MPI_Bcast'][0] // N_TASKS}, Allreduce {rows['MPI_Allreduce'][0] // N_TASKS}")
    report(f"Control flow (Figure 6): {'identical' if rep.traces_match else 'DIVERGED'}")

    assert rep.event_counts_match
    assert rep.traces_match
    assert rows["MPI_Init"] == (N_TASKS, N_TASKS)
    assert rows["MPI_Finalize"] == (N_TASKS, N_TASKS)
    assert rows["MPI_Bcast"][0] // N_TASKS == 1092 + 856 + 5
    assert rows["MPI_Allreduce"][0] // N_TASKS == 856 * 2 + 5
