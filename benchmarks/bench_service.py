"""Service-layer latency/throughput measurement (the ``pr8-service`` entry).

Measures the ``repro.service`` submit path against a real
:class:`~repro.service.server.SimulationServer` (spawned worker pool,
persistent content-addressed cache), and appends/replaces a
``pr8-service`` entry in ``BENCH_engine.json``:

* ``service_cold_submit`` -- submit -> done wall latency of one storm
  scenario on a cold cache (pool dispatch + spawn-worker run + journal);
* ``service_cache_hit`` -- the identical spec resubmitted: answered at
  submit time from the content-addressed cache without touching a
  worker (the tracked cold-vs-hit pair);
* ``service_queue_4w`` -- queue throughput: distinct-seed storm specs
  drained by a 4-worker pool, reported as jobs/second.

The storm spec is the scenario-layer cousin of the ``throughput.py``
permutation storm: one uniform-random traffic app saturating the mini
dragonfly for the whole horizon.  Run directly::

    PYTHONPATH=src:. python benchmarks/bench_service.py
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import tempfile
import time
from datetime import date
from pathlib import Path

from repro.service import SimulationServer

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir,
                           "BENCH_engine.json")

#: Uniform-random storm on the mini dragonfly (~1s wall per run).
STORM = {
    "name": "bench-storm",
    "seed": 100,
    "horizon": 0.3,
    "jobs": [{"app": "ur", "name": "ur0"}],
}


def _storm(seed: int) -> dict:
    spec = json.loads(json.dumps(STORM))
    spec["seed"] = seed
    spec["name"] = f"bench-storm-{seed}"
    return spec


def measure(queue_jobs: int = 12) -> dict:
    out: dict[str, dict] = {}
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        root = Path(tmp)

        with SimulationServer(root / "latency", workers=1) as server:
            t0 = time.perf_counter()
            record = server.submit(_storm(100))
            server.wait(record.job_id, timeout=300.0)
            cold = time.perf_counter() - t0
            t0 = time.perf_counter()
            hit = server.submit(_storm(100))
            warm = time.perf_counter() - t0
            assert hit.cached, "resubmit must be a cache hit"
        out["service_cold_submit"] = {
            "jobs": 1, "seconds": round(cold, 6),
            "jobs_per_sec": round(1.0 / cold, 2),
        }
        out["service_cache_hit"] = {
            "jobs": 1, "seconds": round(warm, 6),
            "jobs_per_sec": round(1.0 / warm, 2),
            "speedup_vs_cold": round(cold / warm, 1),
        }

        with SimulationServer(root / "queue", workers=4) as server:
            t0 = time.perf_counter()
            records = [server.submit(_storm(200 + i))
                       for i in range(queue_jobs)]
            for record in records:
                server.wait(record.job_id, timeout=600.0)
            span = time.perf_counter() - t0
        out["service_queue_4w"] = {
            "jobs": queue_jobs, "seconds": round(span, 6),
            "jobs_per_sec": round(queue_jobs / span, 2),
        }
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--label", default="pr8-service",
                    help="entry label (default: pr8-service)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help="JSON trajectory file to append to")
    ap.add_argument("--queue-jobs", type=int, default=12,
                    help="storm jobs for the 4-worker throughput figure")
    args = ap.parse_args()

    entry = {
        "label": args.label,
        "date": date.today().isoformat(),
        "python": platform.python_version(),
        "benches": measure(args.queue_jobs),
    }

    path = os.path.abspath(args.out)
    doc = {"bench": "engine-throughput", "entries": []}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    labels = [e["label"] for e in doc["entries"]]
    if entry["label"] in labels:
        doc["entries"][labels.index(entry["label"])] = entry
    else:
        doc["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    for name, r in entry["benches"].items():
        extra = (f"  ({r['speedup_vs_cold']}x vs cold)"
                 if "speedup_vs_cold" in r else "")
        print(f"{name:22s} {r['jobs']:>3d} jobs  {r['seconds']:.3f}s  "
              f"{r['jobs_per_sec']:>8.2f} jobs/s{extra}")


if __name__ == "__main__":
    main()
