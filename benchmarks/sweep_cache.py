"""Session-shared sweep for Figures 7 and 9 and Table VI.

The sweep (2 networks x combos x {5 baselines + 3 workloads}) is the
expensive part of the reproduction; it is computed once on first use and
shared across bench modules through the harness experiment cache.
"""

from __future__ import annotations

from benchmarks.conftest import sweep_combos
from repro.harness.sweeps import latency_sweep

_SWEEP = None


def get_sweep():
    global _SWEEP
    if _SWEEP is None:
        _SWEEP = latency_sweep(combos=sweep_combos(), scale="mini", seed=1)
    return _SWEEP
