"""Section VII extension bench: concurrent communication + I/O.

Not a paper table (the paper defers storage to future work); this bench
quantifies the extension the discussion section describes:

* **I/O interference** -- a halo-exchange solver's message latency with
  storage servers placed inside its groups vs in an idle group, with a
  checkpointing job and an ML input pipeline running concurrently (the
  storage analogue of the Figure 7/8 placement-isolation finding);
* **device contention scaling** -- mean write latency as clients per
  server grow (queueing at the storage device, not the network).
"""

from benchmarks.conftest import banner, report

from repro.harness.report import format_bytes, format_seconds, render_table
from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.storage import StorageConfig, StorageSystem
from repro.workloads.io_patterns import checkpointer, ml_reader
from repro.workloads.nekbone import nekbone


def _run_mix(server_nodes):
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=7), routing="adp")
    mpi = SimMPI(fabric)
    storage = StorageSystem(mpi, server_nodes,
                            StorageConfig(write_bw=1 << 30, read_bw=2 << 30))
    mpi.add_job(JobSpec("nekbone", 27, nekbone, list(range(27)),
                        {"dims": (3, 3, 3), "iters": 6}))
    mpi.add_job(JobSpec("train", 8, ml_reader, list(topo.nodes_of_group(2))[:8],
                        {"storage": storage, "steps": 4, "files_per_step": 16,
                         "file_bytes": 128 << 10, "step_s": 2e-4,
                         "gradient_bytes": 1 << 20}))
    mpi.add_job(JobSpec("ckpt", 8, checkpointer, list(topo.nodes_of_group(3))[:8],
                        {"storage": storage, "iters": 3,
                         "stripe_bytes": 2 << 20, "interval_s": 2e-4}))
    mpi.run(until=5.0)
    solver = mpi.results()[0]
    assert solver.finished
    return topo, solver, storage


def test_benchmark_io_interference(benchmark):
    def run():
        topo = Dragonfly1D.mini()
        inside = [list(topo.nodes_of_group(0))[-1], list(topo.nodes_of_group(1))[-1]]
        outside = list(topo.nodes_of_group(topo.n_groups - 1))[:2]
        return _run_mix(inside), _run_mix(outside)

    (t1, solver_in, st_in), (t2, solver_out, st_out) = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    rows = []
    for label, solver, st in (
        ("inside solver groups", solver_in, st_in),
        ("idle group", solver_out, st_out),
    ):
        lats = solver.max_latencies_per_rank()
        rows.append((
            label,
            format_seconds(max(lats)),
            format_seconds(solver.avg_latency()),
            format_seconds(solver.max_comm_time()),
            format_bytes(st.total_bytes()),
        ))
    report(banner("I/O interference: storage placement vs solver latency (extension)"))
    report(render_table(
        ["server placement", "solver max latency", "solver avg latency",
         "solver max comm time", "storage bytes served"],
        rows,
    ))
    # The isolation shape: servers in the solver's groups inflate its tail.
    in_max = max(solver_in.max_latencies_per_rank())
    out_max = max(solver_out.max_latencies_per_rank())
    assert in_max > out_max


def test_benchmark_device_contention(benchmark):
    def latency_for(n_ranks):
        topo = Dragonfly1D.mini()
        fabric = NetworkFabric(topo, NetworkConfig(seed=3), routing="min")
        mpi = SimMPI(fabric)
        storage = StorageSystem(
            mpi, [topo.n_nodes - 1], StorageConfig(write_bw=2e8, access_latency=0.0)
        )
        mpi.add_job(JobSpec(
            "ckpt", n_ranks, checkpointer, list(range(n_ranks)),
            {"storage": storage, "iters": 1, "stripe_bytes": 1 << 20, "interval_s": 0.0},
        ))
        mpi.run(until=30.0)
        assert mpi.results()[0].finished
        return storage.app_stats(0).mean_latency()

    def run():
        return {n: latency_for(n) for n in (1, 2, 4, 8, 16)}

    curve = benchmark.pedantic(run, rounds=1, iterations=1)
    report(banner("Device contention: mean write latency vs clients per server (extension)"))
    report(render_table(
        ["clients", "mean write latency"],
        [(n, format_seconds(v)) for n, v in curve.items()],
    ))
    # FIFO queueing: latency grows monotonically with client count.
    vals = list(curve.values())
    assert all(b >= a for a, b in zip(vals, vals[1:]))
