"""Table II: configuration of the two HPC systems.

Builds the exact paper-scale topologies (8,448 nodes each) and prints
their Table II rows, plus the mini-scale counterparts the sweeps use.
The benchmark times paper-scale topology construction (port tables,
global wiring) -- the setup cost of every simulation.
"""

from benchmarks.conftest import banner, report
from repro.harness.configs import make_topology
from repro.harness.report import render_table
from repro.network.config import LinkClass
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D


def _rows(scale):
    rows = []
    for network in ("1d", "2d"):
        t = make_topology(network, scale)
        d = t.describe()
        rows.append((
            d["topology"], d["radix"], d["groups"], d["routers_per_group"],
            d["nodes_per_router"], d["nodes_per_group"], d["global_per_router"],
            d["system_size"],
        ))
    return rows


def test_benchmark_paper_1d_construction(benchmark):
    topo = benchmark.pedantic(Dragonfly1D.paper, rounds=3, iterations=1)
    assert topo.n_nodes == 8448


def test_benchmark_paper_2d_construction(benchmark):
    topo = benchmark.pedantic(Dragonfly2D.paper, rounds=3, iterations=1)
    assert topo.n_nodes == 8448


def test_benchmark_table2_rows(benchmark):
    rows = benchmark.pedantic(_rows, args=("paper",), rounds=1, iterations=1)
    headers = ["Topology", "Radix", "#Groups", "#Routers/Group", "#Nodes/Router",
               "#Nodes/Group", "#Global/Router", "System Size"]
    report(banner("Table II: configuration of two HPC systems (paper scale)"))
    report(render_table(headers, rows))
    report(banner("Mini-scale counterparts used by the simulation sweeps"))
    report(render_table(headers, _rows("mini")))
    # Paper facts (Table II): both systems 8,448 nodes.
    assert rows[0][-1] == rows[1][-1] == 8448
    assert rows[0][2] == 33 and rows[1][2] == 22
    # Section VI-C preconditions: 2D has more local and global links.
    c1 = Dragonfly1D.paper().link_census()
    c2 = Dragonfly2D.paper().link_census()
    report(f"\nLink census (directed): 1D local={c1[LinkClass.LOCAL]} global={c1[LinkClass.GLOBAL]}; "
          f"2D local={c2[LinkClass.LOCAL]} global={c2[LinkClass.GLOBAL]}")
    assert c2[LinkClass.LOCAL] > c1[LinkClass.LOCAL]
    assert c2[LinkClass.GLOBAL] > c1[LinkClass.GLOBAL]
