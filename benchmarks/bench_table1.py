"""Table I: comparison of workload-generating frameworks.

The paper's Table I is qualitative; two of its rows are measurable in
this reproduction and are measured here:

* *memory footprint* -- peak per-rank communication buffer of the full
  application vs the Union skeleton (skeletons null their buffers), and
  the resident size of a DUMPI-style trace vs the skeleton description;
* *trace collection / scaling* -- the trace path requires a full
  instrumented run per rank count (``repro.trace.record_job``), and its
  artifact grows with execution length, while the skeleton is a
  fixed-size program;
* *automatic skeletonization / integration* -- wall time from
  coNCePTuaL source to a registered, runnable skeleton (the "almost no
  human effort" row), benchmarked as the translation pipeline.
"""

import pytest

from benchmarks.conftest import banner, report
from repro.harness.report import format_bytes, render_table
from repro.trace.recorder import record_job
from repro.union.translator import translate
from repro.union.validation import validate_skeleton
from repro.workloads.alexnet import alexnet_skeleton
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.sources import ALEXNET_SOURCE, COSMOFLOW_SOURCE, PINGPONG_SOURCE

VALIDATION_PARAMS = {"warmups": 64, "updates": 32, "tail": 5}


def test_benchmark_translation_pipeline(benchmark):
    """Source -> lexer -> parser -> checker -> codegen -> compile."""
    skeleton = benchmark(translate, ALEXNET_SOURCE, "alexnet-bench")
    assert "UNION_MPI_Allreduce" in skeleton.python_source


def test_benchmark_table1_rows(benchmark):
    rep = benchmark.pedantic(
        lambda: validate_skeleton(alexnet_skeleton(), 32, VALIDATION_PARAMS, record_trace=False),
        rounds=1,
        iterations=1,
    )
    app_mem, skel_mem = rep.memory_comparison()
    rows = [
        ("Trace collection", "Yes", "No", "No"),
        ("Memory footprint (measured, per rank)", "large",
         format_bytes(app_mem) + " (full app)", format_bytes(skel_mem)),
        ("Scaling application size", "Re-tracing", "Yes", "Yes (re-run translator)"),
        ("Automatic skeletonization", "N/A", "No", "Yes"),
        ("Integration to CODES-style sim", "Easy", "Human", "Automated (registry)"),
        ("Validation w/ new hardware", "Re-tracing", "Re-written", "Easy (same source)"),
    ]
    report(banner("Table I: workload-generating frameworks (measured where possible)"))
    report(render_table(["Feature", "Trace Replay", "SWM", "Union"], rows))
    report(f"\nSkeleton buffer savings at 512-rank AlexNet scale: "
          f"{format_bytes(app_mem)} -> {format_bytes(skel_mem)} per rank")
    assert skel_mem == 0 and app_mem > 0


def test_benchmark_trace_vs_skeleton_footprint(benchmark):
    """Quantify the Table I trace-replay column with the trace subsystem."""
    params_short = {"dims": (2, 2, 2), "iters": 8, "msg_bytes": 32768}
    params_long = {"dims": (2, 2, 2), "iters": 64, "msg_bytes": 32768}

    def collect():
        return (
            record_job(nearest_neighbor, 8, params_short),
            record_job(nearest_neighbor, 8, params_long),
        )

    short, long = benchmark.pedantic(collect, rounds=1, iterations=1)
    skeleton_size = len(translate(ALEXNET_SOURCE, "alexnet-sz").python_source)
    rows = [
        ("trace, 8 iterations", format_bytes(short.byte_size()), f"{short.total_ops()} ops"),
        ("trace, 64 iterations", format_bytes(long.byte_size()), f"{long.total_ops()} ops"),
        ("Union skeleton (any length)", format_bytes(skeleton_size), "fixed-size program"),
    ]
    report(banner("Table I footprint detail: trace artifact vs skeleton"))
    report(render_table(["workload description", "resident size", "content"], rows))
    # Traces grow with execution length; the skeleton does not.
    assert long.byte_size() > 4 * short.byte_size()
    assert skeleton_size < long.byte_size()


def test_benchmark_three_apps_translate(benchmark):
    def translate_all():
        return [
            translate(src, name)
            for name, src in [
                ("pingpong", PINGPONG_SOURCE),
                ("cosmoflow", COSMOFLOW_SOURCE),
                ("alexnet", ALEXNET_SOURCE),
            ]
        ]

    skeletons = benchmark(translate_all)
    assert len(skeletons) == 3
