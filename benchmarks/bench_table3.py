"""Table III: hybrid HPC and ML workload compositions.

Prints the three workload mixes with their per-application rank counts
and key parameters at both scales, and benchmarks job-list assembly
(skeleton translation included on first use).
"""

from benchmarks.conftest import banner, report
from repro.harness.report import render_table
from repro.workloads.catalog import WORKLOADS, app_catalog, build_jobs


def test_benchmark_build_jobs(benchmark):
    jobs = benchmark(build_jobs, "workload3", "mini")
    assert len(jobs) == 5


def test_benchmark_table3_rows(benchmark):
    catalogs = benchmark.pedantic(
        lambda: {s: app_catalog(s) for s in ("paper", "mini")}, rounds=1, iterations=1
    )
    rows = []
    for name, spec in WORKLOADS.items():
        ml = [a for a in spec.apps if catalogs["paper"][a].ml]
        swm = [a for a in spec.apps if not catalogs["paper"][a].ml and a != "ur"]
        synth = [a for a in spec.apps if a == "ur"]
        rows.append((name, ", ".join(ml), ", ".join(swm), ", ".join(synth) or "-"))
    report(banner("Table III: hybrid HPC and ML workloads"))
    report(render_table(["Workload", "ML Skeletons", "SWM Skeletons", "Synthetic"], rows))

    detail = []
    for app, spec in catalogs["paper"].items():
        detail.append((app, spec.kind, spec.nranks, catalogs["mini"][app].nranks))
    report(banner("Per-application configuration"))
    report(render_table(["app", "kind", "paper ranks", "mini ranks"], sorted(detail)))

    assert rows[0][0] == "workload1"
    assert {a for _, s in WORKLOADS.items() for a in s.apps} == set(catalogs["paper"])
