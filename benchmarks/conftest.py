"""Shared infrastructure for the paper-reproduction benchmarks.

Each ``bench_*`` module regenerates one table or figure of the paper's
evaluation.  Benchmark timings wrap a representative simulation cell;
the printed tables/series come from the shared in-process experiment
cache (`repro.harness.experiment`), so figures that consume the same
sweep (Fig 7, Fig 9, Table VI) do not re-simulate.

Heavy sweeps run at mini scale by default.  Set ``REPRO_FULL_SWEEP=1``
to run every placement/routing combination instead of the fast subset.
"""

from __future__ import annotations

import os

import pytest

from repro.harness.configs import COMBOS

#: The regenerated tables/series are printed (visible with ``pytest -s``)
#: and appended to this file, so a plain ``pytest benchmarks/`` run still
#: leaves the full evaluation record on disk.
REPORT_PATH = os.path.join(os.path.dirname(__file__), "reports.txt")


@pytest.fixture(scope="session", autouse=True)
def _fresh_report_file():
    if os.path.exists(REPORT_PATH):
        os.unlink(REPORT_PATH)
    yield


def report(text: str) -> None:
    """Print a report block and persist it to benchmarks/reports.txt."""
    print(text)
    with open(REPORT_PATH, "a", encoding="utf-8") as f:
        f.write(text + "\n")


def full_sweep_enabled() -> bool:
    return os.environ.get("REPRO_FULL_SWEEP", "0") == "1"


def sweep_combos() -> tuple[str, ...]:
    """All six combos in full mode; the four most informative otherwise."""
    if full_sweep_enabled():
        return COMBOS
    return ("rg-min", "rn-min", "rg-adp", "rn-adp")


@pytest.fixture(scope="session")
def combos() -> tuple[str, ...]:
    return sweep_combos()


def banner(title: str) -> str:
    bar = "=" * len(title)
    return f"\n{bar}\n{title}\n{bar}"
