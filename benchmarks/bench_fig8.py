"""Figure 8: traffic received by AlexNet's routers, RR-ADP vs RG-ADP.

Reproduces the time-series experiment of Section VI-A: collect the
per-application windowed byte counters on the routers serving AlexNet in
Workload3 on the 1D dragonfly, under random-router and random-group
placement with adaptive routing.

Shape check: under RR, AlexNet's routers carry substantial traffic from
the other applications (the paper's 1800 MB peak vs 800 MB); under RG
the foreign traffic collapses, keeping AlexNet's own arrival rate
stable.
"""

import numpy as np

from benchmarks.conftest import banner, report
from repro.harness.report import format_bytes, render_series
from repro.harness.sweeps import fig8_series


def test_benchmark_fig8(benchmark):
    data = benchmark.pedantic(fig8_series, kwargs=dict(scale="mini", seed=1), rounds=1, iterations=1)

    foreign = {}
    for placement in ("rr", "rg"):
        label = {"rr": "Random Routers (RR-ADP)", "rg": "Random Groups (RG-ADP)"}[placement]
        report(banner(f"Figure 8 ({label}): bytes/window on AlexNet's routers, 1D dragonfly"))
        total_foreign = 0
        for src, series in sorted(data[placement].items()):
            report(render_series(series, label=f"  {src:10s}"))
            if src != "alexnet":
                total_foreign += int(series.sum())
        foreign[placement] = total_foreign
        report(f"  foreign traffic total: {format_bytes(total_foreign)}")

    # Paper shape: RR lets other jobs' traffic onto AlexNet's routers;
    # RG confines it (1800 MB vs 800 MB peaks in the paper).
    assert foreign["rr"] > foreign["rg"]
    # AlexNet's own traffic reaches its routers in both placements.
    assert data["rr"]["alexnet"].sum() > 0
    assert data["rg"]["alexnet"].sum() > 0
