"""Figure 9: maximum communication time per application.

Prints, for every panel application, the maximum (over ranks)
communication time under each placement-routing combination on both
systems, for baseline and mixed workloads -- the application-level view
that Section VI-B contrasts with the message-level view of Figure 7.

Shape checks:

* HPC applications' comm time degrades more (relatively) under
  interference than the ML applications' (the "ML absorbs latency"
  finding);
* ML baseline comm time is placement/routing-insensitive compared with
  the HPC apps.
"""

import numpy as np

from benchmarks.conftest import banner, sweep_combos, report
from benchmarks.sweep_cache import get_sweep
from repro.harness.metrics import slowdown
from repro.harness.report import format_seconds, render_table
from repro.harness.sweeps import panel_stats, workloads_of
from repro.workloads.catalog import PANEL_APPS

ML_APPS = ("alexnet", "cosmoflow")
HPC_APPS = ("lammps", "nekbone", "milc")


def test_benchmark_fig9(benchmark):
    sweep = benchmark.pedantic(get_sweep, rounds=1, iterations=1)
    combos = sweep_combos()

    rel_slowdown: dict[str, list[float]] = {a: [] for a in PANEL_APPS}
    for app in PANEL_APPS:
        report(banner(f"Figure 9 ({app}): max communication time"))
        rows = []
        for network in ("1d", "2d"):
            for combo in combos:
                cell = panel_stats(sweep, app, network, combo)
                base = cell.get("baseline")
                row = [network, combo, format_seconds(base.max_comm_time) if base else "-"]
                for w in workloads_of(app):
                    s = cell.get(w)
                    row.append(format_seconds(s.max_comm_time) if s else "-")
                    if s and base and base.max_comm_time > 0:
                        rel_slowdown[app].append(slowdown(s.max_comm_time, base.max_comm_time))
                rows.append(row)
        report(render_table(["net", "combo", "baseline"] + workloads_of(app), rows))

    summary = {a: float(np.mean(v)) if v else 0.0 for a, v in rel_slowdown.items()}
    report(banner("Figure 9 shape summary: mean relative comm-time slowdown"))
    report(render_table(
        ["app", "class", "mean comm-time slowdown"],
        [(a, "ML" if a in ML_APPS else "HPC", f"{summary[a]:+.1%}") for a in PANEL_APPS],
    ))

    worst_ml = max(summary[a] for a in ML_APPS)
    worst_hpc = max(summary[a] for a in HPC_APPS)
    report(f"\nworst ML slowdown {worst_ml:+.1%} vs worst HPC slowdown {worst_hpc:+.1%}")
    # Section VI-B: interference shows up in HPC comm time much more
    # than in ML comm time.
    assert worst_hpc > worst_ml
