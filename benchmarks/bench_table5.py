"""Table V: AlexNet bytes transmitted by each rank, app vs skeleton.

Checks the two claims the paper's Table V makes: (1) every rank's
transmitted-byte count is identical between application and skeleton,
and (2) the byte counts split into exactly two classes -- rank 0 (the
Horovod coordinator, which transmits the negotiation broadcasts) and
ranks 1..n-1 (which transmit only the gradient allreduce volume).
"""

import numpy as np

from benchmarks.conftest import banner, report
from repro.harness.report import format_bytes, render_table
from repro.union.validation import validate_skeleton
from repro.workloads.alexnet import alexnet_skeleton

N_TASKS = 64
PARAMS = {"warmups": 1092, "updates": 856, "tail": 5, "gbytes": 246415360}


def test_benchmark_table5(benchmark):
    rep = benchmark.pedantic(
        lambda: validate_skeleton(alexnet_skeleton(), N_TASKS, PARAMS, record_trace=False),
        rounds=1,
        iterations=1,
    )
    report(banner(f"Table V: AlexNet bytes transmitted by each rank ({N_TASKS} ranks)"))
    report(render_table(["Rank", "Application", "Union Skeleton"], rep.table5_rows()))
    report("\nPaper (512 ranks, traced): rank 0: 6.33e11; ranks 1-511: 2.47e8 + 6.33e11")
    app_bytes = rep.app.bytes_by_rank()
    report(f"Ours: rank 0: {format_bytes(app_bytes[0])}; "
          f"ranks 1-{N_TASKS - 1}: {format_bytes(app_bytes[1])}")

    assert rep.bytes_match
    # Exactly two classes of ranks, all workers identical.
    assert len(set(app_bytes[1:])) == 1
    assert app_bytes[0] != app_bytes[1]
    # Shared allreduce volume dominates; it equals updates*gbytes + tail*4.
    allreduce_volume = 856 * 246415360 + 5 * 4
    assert int(app_bytes[1]) == allreduce_volume
    # Rank 0 additionally transmits the broadcast payloads.
    bcast_volume = 1092 * 4 + 856 * 25 + 5 * 4
    assert int(app_bytes[0]) == allreduce_volume + bcast_volume


def test_benchmark_bytes_scale_with_ranks(benchmark):
    """Per-rank byte counts are rank-count invariant (the scaling claim
    behind 'scaling application size: Yes' in Table I)."""

    def both():
        a = validate_skeleton(alexnet_skeleton(), 16, PARAMS, record_trace=False)
        b = validate_skeleton(alexnet_skeleton(), 32, PARAMS, record_trace=False)
        return a, b

    a, b = benchmark.pedantic(both, rounds=1, iterations=1)
    assert int(a.app.bytes_by_rank()[1]) == int(b.app.bytes_by_rank()[1])
    assert int(a.app.bytes_by_rank()[0]) == int(b.app.bytes_by_rank()[0])
