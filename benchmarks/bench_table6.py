"""Table VI: global and local link loads, 1D vs 2D dragonfly.

End-of-simulation per-link byte totals from Workload3 under RG-ADP
(the paper's configuration), per link class.

Shape checks (Section VI-C):

* the 1D system routes a larger *fraction* of its traffic over global
  links (paper: 19% vs 8%) because its groups are smaller;
* per-link load (both classes) is higher on 1D than on 2D -- the
  mechanism behind 2D's better latency/comm-time results.
"""

from benchmarks.conftest import banner, report
from repro.harness.report import format_bytes, render_table
from repro.harness.sweeps import table6_loads


def test_benchmark_table6(benchmark):
    loads = benchmark.pedantic(table6_loads, kwargs=dict(scale="mini", seed=1), rounds=1, iterations=1)
    rows = []
    for network in ("1d", "2d"):
        s = loads[network]
        rows.append((
            f"{network.upper()} dragonfly",
            format_bytes(s["global_total_bytes"]),
            format_bytes(s["local_total_bytes"]),
            format_bytes(s["global_per_link_bytes"]),
            format_bytes(s["local_per_link_bytes"]),
            f"{s['global_fraction']:.1%}",
        ))
    report(banner("Table VI: global and local link load (Workload3, RG-ADP)"))
    report(render_table(
        ["Dragonfly", "Glink Load", "Llink Load",
         "Glink Load/link", "Llink Load/link", "global fraction"],
        rows,
    ))
    report("\nPaper: 1D 1.26 TB global / 5.33 TB local (19% global), "
          "2D 0.92 TB / 10.01 TB (8% global); per-link 313/5639 MB vs 65/3215 MB")

    s1, s2 = loads["1d"], loads["2d"]
    assert s1["global_fraction"] > s2["global_fraction"]
    assert s1["global_per_link_bytes"] > s2["global_per_link_bytes"]
    assert s1["local_per_link_bytes"] > s2["local_per_link_bytes"]
