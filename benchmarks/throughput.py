"""Raw engine/network throughput measurement (events per second).

This is the tracked perf trajectory for the PDES substrate: a fabric-
level permutation packet storm (network core only), a co-scheduled
32-rank allreduce (full MPI stack) and a pure-engine PHOLD run.  Each
bench reports, from the best of ``--repeat`` runs:

* ``events`` / ``seconds`` / ``events_per_sec`` -- committed events of
  *this* tree's model and the raw rate it sustained;
* ``ref_events_per_sec`` -- the rate normalized to the *reference*
  event count (the v0 seed model's committed events for the identical
  workload).  The event-core rework deliberately shrinks the event
  graph (no more ``free``/``inj_free`` self-events), so raw committed
  ev/s undercounts progress: simulating the same workload with fewer,
  slightly heavier events is a win the normalized metric captures and
  the raw one hides.  Across trees the workloads are identical, making
  ``ref_events_per_sec`` the comparable simulation-speed number; it is
  the headline throughput metric of the trajectory.

Run via ``scripts/bench.sh [label]``, which appends an entry to
``BENCH_engine.json`` at the repo root; or directly::

    PYTHONPATH=src:. python benchmarks/throughput.py --label my-change
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import time
from datetime import date

from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.pdes.sequential import SequentialEngine

DEFAULT_OUT = os.path.join(os.path.dirname(__file__), os.pardir, "BENCH_engine.json")


def run_network_throughput(telemetry=None, engine=None) -> int:
    """Raw network-core throughput: a fabric-level permutation packet
    storm (no MPI layer).

    Every node streams 64 KiB messages to a far partner, all injected at
    t=0: NICs serialize back-to-back packets, local and global links
    congest, adaptive routing probes queue depths per packet.  This is
    the event traffic the PDES substrate must sustain, isolated from
    rank-program (generator) overhead.

    ``telemetry`` overrides the fabric's session -- the
    telemetry-overhead pair below runs this identical storm with the
    Section IV-D instruments on (the default, what this bench always
    measured) and with every ``net.*`` family disabled.  ``engine``
    swaps the PDES engine (the conservative pair below).
    """
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=2), routing="adp",
                           telemetry=telemetry, engine=engine)
    n = fabric.topo.n_nodes
    for node in range(n):
        partner = (node + n // 2) % n
        for k in range(4):
            fabric.send_message(node % 4, node, partner, 1 << 16)
    fabric.engine.run(until=1.0)
    assert fabric.in_flight() == 0
    return fabric.engine.events_processed


def run_network_storm_telemetry_off() -> int:
    """The same permutation storm with telemetry fully disabled.

    The pair (``network_throughput``, ``network_storm_telemetry_off``)
    is the tracked instrumentation-overhead measurement: disabling a
    family binds ``None`` on the LP hot paths, so this run skips the
    per-packet app-counter and link-load dict work entirely.  The event
    graph is identical (telemetry never schedules events), hence the
    shared reference count.
    """
    from repro.telemetry import Telemetry

    return run_network_throughput(telemetry=Telemetry(disable=("net.*",)))


def run_network_storm_stepwise(windows: int = 20) -> int:
    """The same permutation storm advanced via ``engine.step()`` per
    window instead of one monolithic ``run()``.

    The pair (``network_throughput``, ``network_storm_stepwise``) is the
    tracked session-lifecycle overhead measurement: a stepwise driver
    (``SimulationSession.step`` / ``repro.env``) re-enters the scheduler
    loop once per window and snapshots nothing here, so the delta is the
    pure cost of chopping one run into ``windows`` horizon slices.  The
    committed event set is identical by construction, hence the shared
    reference count.
    """
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=2), routing="adp")
    n = fabric.topo.n_nodes
    for node in range(n):
        partner = (node + n // 2) % n
        for k in range(4):
            fabric.send_message(node % 4, node, partner, 1 << 16)
    for w in range(1, windows + 1):
        fabric.engine.step(until=w / windows)
    assert fabric.in_flight() == 0
    return fabric.engine.events_processed


def run_mpi_workload_throughput() -> int:
    """End-to-end reference run: events committed by a 32-rank,
    3-iteration 512 KiB allreduce under adaptive routing (MPI layer
    included)."""
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=2), routing="adp")
    mpi = SimMPI(fabric)

    def allred(ctx):
        for _ in range(3):
            yield ctx.compute(1e-4)
            yield from ctx.allreduce(1 << 19)

    mpi.add_job(JobSpec("a", 32, allred, list(range(32))))
    mpi.run(until=1.0)
    return fabric.engine.events_processed


def run_network_storm_conservative() -> int:
    """The same permutation storm on the partitioned conservative engine.

    Topology-aware partitioning (3 partitions = 3 groups each on the
    mini dragonfly, lookahead = global latency + router delay): the pair
    (``network_throughput``, ``network_storm_conservative``) is the
    tracked sequential-vs-partitioned comparison.  The committed event
    set is identical by construction (the engine commits each YAWNS
    window in the deterministic merge order), so the pair shares the
    reference count; the delta is the pure cost of window bookkeeping
    and per-event partition tracking -- the emulation overhead a real
    parallel run would spend instead on synchronization.
    """
    from repro.parallel import conservative_engine

    engine = conservative_engine(Dragonfly1D.mini(), NetworkConfig(seed=2),
                                 partitions=3)
    return run_network_throughput(engine=engine)


def _storm_manager(engine):
    """A manager-level uniform-random storm: 64 ranks spraying 32 KiB
    messages across the mini dragonfly.

    The mp-conservative engine only distributes models built through a
    session (the recipe extraction happens at ``build()``), so the
    multi-process pair below runs the storm through ``WorkloadManager``
    rather than bare fabric sends.
    """
    from repro.union.manager import Job, WorkloadManager
    from repro.workloads.uniform_random import uniform_random

    mgr = WorkloadManager(Dragonfly1D.mini(), routing="adp", placement="rn",
                          seed=2, engine=engine)
    mgr.add_job(Job("storm", 64, program=uniform_random,
                    params={"iters": 8, "msg_bytes": 1 << 16}))
    return mgr


def run_network_storm_union() -> int:
    """The manager-level storm on the sequential engine -- the baseline
    half of the multi-process pair."""
    out = _storm_manager(None).run(until=1.0)
    return out.fabric.engine.events_processed


def run_network_storm_mp() -> int:
    """The manager-level storm distributed over 3 real worker processes
    (``mp-conservative``, spawn backend).

    The committed event set is identical to the sequential run by
    construction, so the pair (``network_storm_union``,
    ``network_storm_mp``) shares one reference count; the delta is the
    full multi-process bill -- worker spawn, replicated model
    construction, window-boundary pickling and the end-of-run state
    merge.  On a single CPU this is strictly overhead (the workers
    time-slice one core); the number is tracked to keep that cost
    honest, not to claim a speedup.
    """
    mgr = _storm_manager({"type": "mp-conservative", "partitions": 3,
                          "backend": "mp"})
    out = mgr.run(until=1.0)
    eng = out.fabric.engine
    assert eng.execution_mode == "distributed", eng.fallback_reason
    return eng.events_processed


def run_network_storm_accel() -> int:
    """The same permutation storm with the event loop in the compiled
    :mod:`repro.accel` kernel (``accel-sequential``, compiled backend).

    The committed event set is identical to the sequential run (the
    parity goldens pin it bit for bit), so the pair
    (``network_throughput``, ``network_storm_accel``) shares one
    reference count; the delta is what moving the heap, the commit loop
    and the router/terminal ``pkt`` fast paths into C buys.  Asserts
    the compiled backend actually ran -- this bench must fail loudly
    rather than silently time the Python fallback.
    """
    from repro.accel import accel_sequential_engine

    eng = accel_sequential_engine()
    assert eng.backend == "compiled", eng.backend_reason
    return run_network_throughput(engine=eng)


def run_phold(engine=None) -> int:
    """Pure engine overhead: 64-LP PHOLD on the sequential scheduler."""
    from tests.pdes.phold import build_phold

    eng = engine if engine is not None else SequentialEngine()
    build_phold(eng, n_lps=64, seed=7, initial=4)
    eng.run(until=500.0)
    return eng.events_processed


def run_phold_conservative() -> int:
    """64-LP PHOLD on the conservative engine (8 partitions, lookahead =
    the model's minimum delay) -- the pure-engine half of the
    sequential-vs-partitioned pair."""
    from repro.pdes.conservative import ConservativeEngine

    return run_phold(ConservativeEngine(lookahead=0.5, n_partitions=8))


def run_phold_accel() -> int:
    """64-LP PHOLD on the compiled kernel (``accel-sequential``).

    PHOLD handlers are plain Python LPs, so this pair
    (``phold_sequential``, ``phold_accel``) isolates what the C heap and
    commit loop alone are worth when every event still crosses back into
    Python -- the floor of the kernel's win, where the storm pair is
    closer to its ceiling.  Asserts the compiled backend actually ran.
    """
    from repro.accel import accel_sequential_engine

    eng = accel_sequential_engine()
    assert eng.backend == "compiled", eng.backend_reason
    return run_phold(engine=eng)


BENCHES = {
    "network_throughput": run_network_throughput,
    "network_storm_telemetry_off": run_network_storm_telemetry_off,
    "network_storm_conservative": run_network_storm_conservative,
    "network_storm_stepwise": run_network_storm_stepwise,
    "network_storm_union": run_network_storm_union,
    "network_storm_mp": run_network_storm_mp,
    "network_storm_accel": run_network_storm_accel,
    "mpi_workload": run_mpi_workload_throughput,
    "phold_sequential": run_phold,
    "phold_conservative": run_phold_conservative,
    "phold_accel": run_phold_accel,
}

#: Committed event counts of the v0 seed model for the identical
#: workloads, measured with this harness.  Denominator-stable unit for
#: ``ref_events_per_sec``; re-pin if a bench workload ever changes.
#: The telemetry-off, conservative and stepwise storms commit the same
#: events as the instrumented sequential one (telemetry is event-free,
#: the conservative engine commits the identical event sequence, and
#: stepping only slices the horizon), so all four share one reference;
#: likewise the PHOLD pair.
REFERENCE_EVENTS = {
    "network_throughput": 117_846,
    "network_storm_telemetry_off": 117_846,
    "network_storm_conservative": 117_846,
    "network_storm_stepwise": 117_846,
    # The manager-level storm pair is new in pr9-mpexec; its reference
    # is this tree's sequential count (the mp run commits the identical
    # set, golden-tested).
    "network_storm_union": 54_749,
    "network_storm_mp": 54_749,
    # The accel benches commit the identical event sets as their
    # pure-Python halves (pinned bit for bit by the parity goldens).
    "network_storm_accel": 117_846,
    "mpi_workload": 132_317,
    "phold_sequential": 127_946,
    "phold_conservative": 127_946,
    "phold_accel": 127_946,
}


def engine_benches(table: dict) -> dict:
    """The engine-substituted roster for ``union-sim bench --engine``.

    Re-runs the engine-parameterizable benches on an engine built from
    the registry table: the permutation storm always (partitioned
    engines derive their plan from the storm's own topology), PHOLD only
    for unpartitioned specs (its LPs are not a fabric, so there is no
    topology to plan partitions over).  Each repeat builds a fresh
    engine -- engines hold per-run LP state.
    """
    from repro.registry import build_engine, engine_registry

    spec = engine_registry.get(table.get("type", "sequential"))

    def storm() -> int:
        eng = build_engine(dict(table), Dragonfly1D.mini(),
                           NetworkConfig(seed=2))
        return run_network_throughput(engine=eng)

    out = {"network_throughput": storm}
    if not spec.partitioned:
        def phold() -> int:
            return run_phold(engine=build_engine(dict(table), None))

        out["phold_sequential"] = phold
    return out


def measure(repeat: int = 3, benches: dict | None = None) -> dict:
    """Run ``benches`` (default: the full roster) ``repeat`` times each,
    keeping the best; reference normalization keyed by bench name."""
    out = {}
    for name, fn in (BENCHES if benches is None else benches).items():
        best = None
        events = 0
        for _ in range(repeat):
            t0 = time.perf_counter()
            events = fn()
            dt = time.perf_counter() - t0
            if best is None or dt < best:
                best = dt
        out[name] = {
            "events": events,
            "seconds": round(best, 6),
            "events_per_sec": round(events / best),
            "ref_events_per_sec": round(REFERENCE_EVENTS[name] / best),
        }
    return out


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--label", default="dev", help="entry label (e.g. git rev or PR name)")
    ap.add_argument("--out", default=DEFAULT_OUT, help="JSON trajectory file to append to")
    ap.add_argument("--repeat", type=int, default=3, help="runs per bench (best is kept)")
    args = ap.parse_args()

    entry = {
        "label": args.label,
        "date": date.today().isoformat(),
        "python": platform.python_version(),
        "benches": measure(args.repeat),
    }

    path = os.path.abspath(args.out)
    doc = {"bench": "engine-throughput", "entries": []}
    if os.path.exists(path):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    # Re-running with an existing label replaces that entry *in place*,
    # preserving its position: entry 0 is the baseline every later entry
    # is compared against, so re-measuring the baseline must not move it.
    labels = [e["label"] for e in doc["entries"]]
    if entry["label"] in labels:
        doc["entries"][labels.index(entry["label"])] = entry
    else:
        doc["entries"].append(entry)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")

    for name, r in entry["benches"].items():
        print(f"{name:20s} {r['events']:>9d} events  {r['seconds']:.3f}s  "
              f"{r['events_per_sec']:>9,d} ev/s  "
              f"{r['ref_events_per_sec']:>9,d} ref-ev/s")
    if len(doc["entries"]) > 1:
        base = doc["entries"][0]["benches"]
        for name, r in entry["benches"].items():
            if name in base:
                speedup = r["ref_events_per_sec"] / base[name]["ref_events_per_sec"]
                print(f"{name:20s} {speedup:.2f}x vs {doc['entries'][0]['label']}")


if __name__ == "__main__":
    main()
