"""Shim for environments whose setuptools cannot build PEP 660 editable wheels.

All real metadata -- including the ``union-sim`` console entry point --
lives in ``pyproject.toml``; this file exists only so legacy
``setup.py``-driven editable installs keep working.
"""
from setuptools import setup

setup()
