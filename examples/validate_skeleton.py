#!/usr/bin/env python
"""Union validation of the AlexNet skeleton (Section V, Tables IV/V, Fig 6).

Runs the AlexNet coNCePTuaL program through both backends -- the full
application interpreter (real buffers, per-rank accounting) and the
Union skeleton in counting mode -- and compares MPI event counts, bytes
transmitted per rank, and the control-flow trace.

Run:  python examples/validate_skeleton.py
"""

from repro.harness.report import format_bytes, render_table
from repro.union.validation import validate_skeleton
from repro.workloads.alexnet import alexnet_skeleton

#: Validation-scale parameters: full Figure 6 loop structure, reduced
#: rank count so the example runs in seconds.
N_TASKS = 64
PARAMS = {"warmups": 1092, "updates": 856, "tail": 5, "gbytes": 246415360}


def main() -> None:
    skeleton = alexnet_skeleton()
    report = validate_skeleton(skeleton, N_TASKS, PARAMS, record_trace=True)

    print(render_table(
        ["MPI function", "Application", "Union skeleton"],
        report.table4_rows(),
        title=f"Table IV analogue: AlexNet MPI event counts ({N_TASKS} ranks)",
    ))
    print()
    print(render_table(
        ["Rank", "Application", "Union skeleton"],
        report.table5_rows(),
        title="Table V analogue: bytes transmitted by each rank",
    ))
    app_mem, skel_mem = report.memory_comparison()
    print(f"\nPeak comm buffer: application={format_bytes(app_mem)}, "
          f"skeleton={format_bytes(skel_mem)} (skeletonization at work)")
    print(f"Control flow (Figure 6): "
          f"{'identical' if report.traces_match else 'DIVERGED'} across all ranks")
    trace = report.app.traces[1]
    print(f"rank 1 trace: {' -> '.join(trace[:6])} ... {' -> '.join(trace[-3:])} "
          f"({len(trace)} MPI operations)")
    print(f"\nValidation {'PASSED' if report.ok else 'FAILED'}")
    for m in report.mismatches:
        print(f"  mismatch: {m}")


if __name__ == "__main__":
    main()
