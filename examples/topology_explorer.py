#!/usr/bin/env python
"""Explore the two dragonfly systems of Table II.

Builds the exact paper-scale 1D and 2D dragonfly networks (8,448 nodes
each), prints their configurations, link censuses and minimal-path hop
histograms -- the structural facts behind the Section VI-C analysis
(2D has more local and global links; 1D has shorter paths but fewer of
them).

Run:  python examples/topology_explorer.py
"""

from collections import Counter

from repro.harness.report import render_table
from repro.network.config import LinkClass, NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.network.routing import MinimalRouting


def hop_histogram(topo, samples: int = 2000) -> Counter:
    """Histogram of minimal-path hop counts over sampled router pairs."""
    cfg = NetworkConfig(seed=3)
    routing = MinimalRouting(topo, cfg, probe=lambda r, p: 0)
    hist: Counter = Counter()
    step = max(1, (topo.n_routers * topo.n_routers) // samples)
    k = 0
    for i in range(0, topo.n_routers * topo.n_routers, step):
        src, dst = divmod(i, topo.n_routers)
        if src >= topo.n_routers:
            break
        path, _ = routing.select_path(src % topo.n_routers, dst)
        hist[len(path) - 1] += 1
        k += 1
    return hist


def main() -> None:
    rows = []
    censuses = []
    for topo in (Dragonfly1D.paper(), Dragonfly2D.paper()):
        d = topo.describe()
        rows.append((d["topology"], d["radix"], d["groups"], d["routers_per_group"],
                     d["nodes_per_router"], d["nodes_per_group"], d["global_per_router"],
                     d["system_size"]))
        census = topo.link_census()
        censuses.append((d["topology"],
                         census[LinkClass.TERMINAL], census[LinkClass.LOCAL],
                         census[LinkClass.GLOBAL], topo.diameter()))
    print(render_table(
        ["Topology", "Radix", "#Groups", "#Routers/Group", "#Nodes/Router",
         "#Nodes/Group", "#Global/Router", "System Size"],
        rows, title="Table II: system configurations",
    ))
    print()
    print(render_table(
        ["Topology", "terminal links", "local links", "global links", "diameter (router hops)"],
        censuses, title="Link census (directed)",
    ))
    print()
    for topo in (Dragonfly1D.paper(), Dragonfly2D.paper()):
        hist = hop_histogram(topo)
        total = sum(hist.values())
        dist = ", ".join(f"{h} hops: {c / total:.0%}" for h, c in sorted(hist.items()))
        print(f"{topo.name} minimal-path hops (sampled): {dist}")


if __name__ == "__main__":
    main()
