#!/usr/bin/env python
"""Hybrid HPC + ML workload on both dragonfly systems (Section VI).

Co-runs Workload3 (Cosmoflow + AlexNet + Nekbone + MILC + NN, Table III)
on the mini 1D and 2D dragonfly systems with random-group placement and
adaptive routing, then prints per-application latency/communication-time
metrics and the Figure 8-style router traffic series.

The whole experiment is declared in
``examples/scenarios/hybrid_workload.toml`` and runs through the
scenario subsystem -- this script only flips the network between runs
and renders the extra traffic series.  ``union-sim scenario
examples/scenarios/hybrid_workload.toml`` runs the same spec directly.

Run:  python examples/hybrid_workload.py
"""

from pathlib import Path

from repro.harness.report import format_bytes, format_seconds, render_series, render_table
from repro.scenario import load_scenario, run_scenario

SPEC = Path(__file__).resolve().parent / "scenarios" / "hybrid_workload.toml"


def run_network(network: str) -> None:
    spec = load_scenario(SPEC)
    spec.network = network
    result = run_scenario(spec)
    outcome = result.outcome

    rows = []
    for a in outcome.apps:
        r = a.result
        lat = r.max_latencies_per_rank()
        rows.append((
            a.name,
            r.nranks,
            format_seconds(max(lat) if lat else 0.0),
            format_seconds(r.avg_latency()),
            format_seconds(r.max_comm_time()),
            len(a.groups),
        ))
    print(render_table(
        ["app", "ranks", "max msg latency", "avg msg latency", "max comm time", "#groups"],
        rows,
        title=f"Workload3 on mini {network.upper()} dragonfly (RG-ADP)",
    ))
    ls = outcome.link_load_summary()
    print(f"link loads: global={format_bytes(ls['global_total_bytes'])} "
          f"({ls['global_fraction']:.1%} of router traffic), "
          f"local={format_bytes(ls['local_total_bytes'])}\n")

    if network == "1d":
        print("Traffic received by AlexNet's routers (Figure 8 style):")
        for src in ("alexnet", "milc", "nekbone", "cosmoflow", "nn"):
            series = outcome.router_traffic_series("alexnet", src)
            print(render_series(series, label=f"  {src:10s}"))
        print()


def main() -> None:
    for network in ("1d", "2d"):
        run_network(network)


if __name__ == "__main__":
    main()
