#!/usr/bin/env python
"""Quickstart: the paper's Figure 1 ping-pong, end to end.

1. Write (here: reuse) a coNCePTuaL program.
2. Union translates it into a skeleton automatically.
3. Validate skeleton vs application (Section V methodology).
4. Run it in situ on a simulated 1D dragonfly and read the latency.

Run:  python examples/quickstart.py
"""

from repro.harness.report import format_bytes, format_seconds, render_table
from repro.network.dragonfly import Dragonfly1D
from repro.union.manager import Job, WorkloadManager
from repro.union.translator import translate
from repro.union.validation import validate_skeleton
from repro.workloads.sources import PINGPONG_SOURCE


def main() -> None:
    # -- step 1+2: translate ------------------------------------------------
    skeleton = translate(PINGPONG_SOURCE, "pingpong")
    print("=== Generated Union skeleton (Figure 5 analogue) ===")
    print(skeleton.python_source)

    # -- step 3: validate ----------------------------------------------------
    report = validate_skeleton(skeleton, n_tasks=4, params={"reps": 50})
    print(render_table(
        ["MPI function", "Application", "Union skeleton"],
        report.table4_rows(),
        title="Validation: event counts",
    ))
    app_mem, skel_mem = report.memory_comparison()
    print(f"comm buffers: application={format_bytes(app_mem)}, skeleton={format_bytes(skel_mem)}")
    assert report.ok, report.mismatches

    # -- step 4: simulate in situ ----------------------------------------------
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn", seed=7)
    mgr.add_job(Job("pingpong", 2, skeleton=skeleton, params={"reps": 200, "msgsize": 4096}))
    outcome = mgr.run(until=1.0)
    app = outcome.app("pingpong")
    lat_min, lat_avg, lat_max = app.result.rank_stats[0].latency_summary()
    print("\n=== Simulated ping-pong on mini 1D dragonfly ===")
    print(f"message latency (rank 0): min={format_seconds(lat_min)} "
          f"avg={format_seconds(lat_avg)} max={format_seconds(lat_max)}")
    print(f"communication time (rank 0): {format_seconds(app.result.rank_stats[0].comm_time)}")
    logged = app.result.rank_stats[0].log_rows
    print(f"logged half-RTT samples: {len(logged)} "
          f"(first: {logged[0][1]:.2f} us)" if logged else "no log rows")


if __name__ == "__main__":
    main()
