#!/usr/bin/env python
"""Write a *new* application in coNCePTuaL and co-run it -- zero glue code.

The paper's pitch (Table I: "Effortlessness", "Automation") is that
adding an application to the simulation takes an English-like program
and nothing else: no simulator knowledge, no recompilation.  This
example authors a 2D halo-exchange benchmark from scratch, validates it,
registers it, and co-runs it with Cosmoflow on the mini 2D dragonfly.

Run:  python examples/write_your_own.py
"""

from repro.harness.report import format_seconds, render_table
from repro.network.dragonfly2d import Dragonfly2D
from repro.union.manager import WorkloadManager
from repro.union.registry import clear_registry, register_source
from repro.union.validation import validate_skeleton
from repro.workloads.cosmoflow import cosmoflow_skeleton
from repro.union.manager import Job

HALO2D_SOURCE = """\
# A 2D halo exchange with corner turns, written from scratch.
Require language version "1.5".

side is "Grid side length" and comes from "--side" with default 4.
hbytes is "Halo message size" and comes from "--hbytes" with default 65536.
iters is "Iterations" and comes from "--iters" with default 10.

Assert that "the grid must fill the job" with side*side = num_tasks.

For iters repetitions {
  all tasks compute for 300 microseconds then
  all tasks t sends a hbytes byte nonblocking message to task torus_neighbor(side, side, 1, t, 1, 0, 0) then
  all tasks t sends a hbytes byte nonblocking message to task torus_neighbor(side, side, 1, t, -1, 0, 0) then
  all tasks t sends a hbytes byte nonblocking message to task torus_neighbor(side, side, 1, t, 0, 1, 0) then
  all tasks t sends a hbytes byte nonblocking message to task torus_neighbor(side, side, 1, t, 0, -1, 0) then
  all tasks await completion then
  all tasks reduce an 8 byte value to all tasks
}
"""


def main() -> None:
    clear_registry()
    skeleton = register_source(HALO2D_SOURCE, "halo2d")
    print("Registered skeleton 'halo2d'. Generated code (first 16 lines):")
    print("\n".join(skeleton.python_source.splitlines()[:16]))

    report = validate_skeleton(skeleton, n_tasks=16, params={"iters": 3})
    print(f"\nvalidation: {'PASSED' if report.ok else 'FAILED'} "
          f"(events {dict(list(report.app.event_counts().items())[:3])} ...)")
    assert report.ok, report.mismatches

    mgr = WorkloadManager(Dragonfly2D.mini(), routing="adp", placement="rr", seed=5)
    mgr.add_skeleton_job("halo2d", 16, {"side": 4, "iters": 8})
    mgr.add_job(Job("cosmoflow", 24, skeleton=cosmoflow_skeleton(),
                    params={"iters": 3, "abytes": 512 * 1024, "cmsecs": 2}))
    outcome = mgr.run(until=0.05)

    rows = [
        (a.name, a.result.nranks, "yes" if a.result.finished else "no",
         format_seconds(a.result.avg_latency()), format_seconds(a.result.max_comm_time()))
        for a in outcome.apps
    ]
    print()
    print(render_table(
        ["app", "ranks", "done", "avg msg latency", "max comm time"],
        rows, title="halo2d co-running with Cosmoflow (mini 2D dragonfly, RR-ADP)",
    ))


if __name__ == "__main__":
    main()
