#!/usr/bin/env python
"""Trace replay vs Union skeleton: Table I, measured.

Simulates the same nearest-neighbour workload three ways --

1. directly (the "real application" reference),
2. from a DUMPI-style trace collected in a prior instrumented run,
3. as a Union skeleton written in coNCePTuaL --

and contrasts the Table I columns: the trace artifact's size (and how it
grows with execution length), the re-tracing requirement when the rank
count changes, and the skeleton's fixed-size, scale-free description.

Run:  python examples/trace_vs_union.py
"""

from repro.harness.report import format_bytes, format_seconds, render_table
from repro.mpi.engine import JobSpec, SimMPI
from repro.network import Dragonfly1D, NetworkConfig, NetworkFabric
from repro.trace import TraceScalingError, record_job, replay_program
from repro.union.manager import Job, WorkloadManager
from repro.union.translator import translate
from repro.workloads.nearest_neighbor import nearest_neighbor

NN_DSL = """\
side is "grid side" and comes from "--side" with default 2.
iters is "iterations" and comes from "--iters" with default 6.
Assert that "cubic grid" with side*side*side = num_tasks.
For iters repetitions {
  all tasks compute for 300 microseconds then
  all tasks t sends a 32 kilobyte nonblocking message to task torus_neighbor(side, side, side, t, 1, 0, 0) then
  all tasks t sends a 32 kilobyte nonblocking message to task torus_neighbor(side, side, side, t, 0, 1, 0) then
  all tasks t sends a 32 kilobyte nonblocking message to task torus_neighbor(side, side, side, t, 0, 0, 1) then
  all tasks await completion
}
"""

PARAMS = {"dims": (2, 2, 2), "iters": 6, "msg_bytes": 32768, "compute_s": 0.3e-3}


def simulate_program(program, nranks, params=None):
    fabric = NetworkFabric(Dragonfly1D.mini(), NetworkConfig(seed=1), routing="min")
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("job", nranks, program, list(range(nranks)), params or {}))
    mpi.run(until=1.0)
    res = mpi.results()[0]
    return max(s.finished_at for s in res.rank_stats)


def main() -> None:
    # 1. Direct (reference).
    t_direct = simulate_program(nearest_neighbor, 8, PARAMS)

    # 2. Trace: instrumented run, then replay.
    traces = record_job(nearest_neighbor, 8, PARAMS)
    t_replay = simulate_program(replay_program(traces), 8)
    traces_long = record_job(nearest_neighbor, 8, {**PARAMS, "iters": 48})

    # 3. Union: translate the DSL description, run the skeleton in situ.
    skeleton = translate(NN_DSL, "nn-dsl")
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn", seed=1)
    mgr.add_job(Job("nn-dsl", 8, skeleton=skeleton, params={"side": 2, "iters": 6}))
    outcome = mgr.run(until=1.0)
    t_union = max(
        s.finished_at for s in outcome.app("nn-dsl").result.rank_stats
    )

    print(render_table(
        ["path", "simulated completion", "artifact size", "scales to new rank count?"],
        [
            ("direct application", format_seconds(t_direct), "-", "re-run"),
            ("trace replay (6 iters)", format_seconds(t_replay),
             format_bytes(traces.byte_size()), "NO - re-trace"),
            ("trace replay (48 iters)", "-",
             format_bytes(traces_long.byte_size()), "NO - re-trace"),
            ("Union skeleton", format_seconds(t_union),
             format_bytes(len(skeleton.python_source)), "yes (same source)"),
        ],
        title="Table I, measured: three ways to drive the same workload",
    ))

    print("\nAttempting to replay the 8-rank trace on 27 ranks:")
    try:
        simulate_program(replay_program(traces), 27)
    except TraceScalingError as e:
        print(f"  TraceScalingError: {e}")
    print("\nRunning the Union skeleton at 27 ranks (same source, new scale):")
    mgr = WorkloadManager(Dragonfly1D.mini(), routing="min", placement="rn", seed=2)
    mgr.add_job(Job("nn-dsl", 27, skeleton=skeleton, params={"side": 3, "iters": 6}))
    outcome = mgr.run(until=1.0)
    print(f"  finished: {outcome.app('nn-dsl').result.finished}")


if __name__ == "__main__":
    main()
