#!/usr/bin/env python
"""Placement x routing interference study (the Figure 7/9 question).

For each placement (RG/RR/RN) and routing (MIN/ADP) on the mini 1D
dragonfly, co-run Workload2 and compare each application's mean max
message latency and max communication time against its baseline
(running alone under the same configuration) -- the paper's measure of
network interference.

Every cell is a programmatically built scenario spec (a plain dict run
through :func:`repro.scenario.parse_scenario`), so the sweep doubles as
a demonstration of driving the scenario subsystem from Python; the
co-run scenarios are memoized because each one serves several
applications' rows.

Run:  python examples/placement_study.py
"""

from repro.harness.configs import COMBOS
from repro.harness.metrics import slowdown
from repro.harness.report import format_seconds, render_table
from repro.scenario import ScenarioResult, parse_scenario, run_scenario
from repro.workloads.catalog import WORKLOADS

APPS = ("lammps", "milc", "alexnet", "cosmoflow")

_CACHE: dict[str, ScenarioResult] = {}


def run_cell(name: str, apps: list[str], placement: str, routing: str) -> ScenarioResult:
    """Run (or fetch) one scenario: ``apps`` co-scheduled under one combo."""
    if name not in _CACHE:
        _CACHE[name] = run_scenario(parse_scenario({
            "name": name,
            "topology": {"network": "1d", "scale": "mini"},
            "placement": placement,
            "routing": routing,
            "seed": 1,
            "jobs": [{"app": app} for app in apps],
        }))
    return _CACHE[name]


def mean_max_latency(result: ScenarioResult, app: str) -> float:
    """Mean over ranks of each rank's max message latency (Figure 7 metric)."""
    lat = result.outcome.app(app).result.max_latencies_per_rank()
    return sum(lat) / len(lat) if lat else 0.0


def main() -> None:
    mix = WORKLOADS["workload2"].apps
    for app in APPS:
        rows = []
        for combo in COMBOS:
            placement, routing = combo.split("-")
            base = run_cell(f"baseline-{app}-{combo}", [app], placement, routing)
            mixed = run_cell(f"workload2-{combo}", mix, placement, routing)
            b_lat, m_lat = mean_max_latency(base, app), mean_max_latency(mixed, app)
            b_comm = base.job(app).max_comm_time
            m_comm = mixed.job(app).max_comm_time
            rows.append((
                combo,
                format_seconds(b_lat),
                format_seconds(m_lat),
                f"{slowdown(m_lat, b_lat):+.1%}",
                format_seconds(b_comm),
                format_seconds(m_comm),
                f"{slowdown(m_comm, b_comm):+.1%}",
            ))
        print(render_table(
            ["combo", "lat base", "lat mixed", "lat slowdown",
             "comm base", "comm mixed", "comm slowdown"],
            rows,
            title=f"{app}: baseline vs Workload2 (mini 1D dragonfly)",
        ))
        print()


if __name__ == "__main__":
    main()
