#!/usr/bin/env python
"""Placement x routing interference study (the Figure 7/9 question).

For each placement (RG/RR/RN) and routing (MIN/ADP) on the mini 1D
dragonfly, co-run Workload2 and compare each application's mean max
message latency and max communication time against its baseline
(running alone under the same configuration) -- the paper's measure of
network interference.

Run:  python examples/placement_study.py
"""

from repro.harness.configs import COMBOS
from repro.harness.experiment import ExperimentConfig, run_experiment
from repro.harness.metrics import slowdown
from repro.harness.report import format_seconds, render_table

APPS = ("lammps", "milc", "alexnet", "cosmoflow")


def main() -> None:
    for app in APPS:
        rows = []
        for combo in COMBOS:
            placement, routing = combo.split("-")
            base = run_experiment(ExperimentConfig(
                network="1d", workload=f"baseline:{app}",
                placement=placement, routing=routing,
            ))
            mixed = run_experiment(ExperimentConfig(
                network="1d", workload="workload2",
                placement=placement, routing=routing,
            ))
            b, m = base.app(app), mixed.app(app)
            rows.append((
                combo,
                format_seconds(b.max_latency_box.mean),
                format_seconds(m.max_latency_box.mean),
                f"{slowdown(m.max_latency_box.mean, b.max_latency_box.mean):+.1%}",
                format_seconds(b.max_comm_time),
                format_seconds(m.max_comm_time),
                f"{slowdown(m.max_comm_time, b.max_comm_time):+.1%}",
            ))
        print(render_table(
            ["combo", "lat base", "lat mixed", "lat slowdown",
             "comm base", "comm mixed", "comm slowdown"],
            rows,
            title=f"{app}: baseline vs Workload2 (mini 1D dragonfly)",
        ))
        print()


if __name__ == "__main__":
    main()
