#!/usr/bin/env python
"""Concurrent communication + I/O simulation (the Section VII extension).

A Nekbone-style CG solver shares a mini 1D dragonfly with an ML training
job whose input pipeline reads many small files from storage servers
(the read-intensive pattern the paper's discussion section describes),
plus a periodic checkpointing job.  We run the mix twice:

* storage servers placed *inside* the groups the solver occupies, and
* storage servers placed in an otherwise idle group,

and compare the solver's message latency plus every job's I/O metrics —
the storage-placement analogue of the paper's random-group isolation
finding.

Run:  python examples/io_interference.py
"""

from repro.harness.report import format_bytes, format_seconds, render_table
from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.fabric import NetworkFabric
from repro.storage import StorageConfig, StorageSystem
from repro.workloads.io_patterns import checkpointer, ml_reader
from repro.workloads.nekbone import nekbone


def run(server_nodes: list[int], label: str) -> None:
    topo = Dragonfly1D.mini()
    fabric = NetworkFabric(topo, NetworkConfig(seed=7), routing="adp")
    mpi = SimMPI(fabric)
    storage = StorageSystem(
        mpi, server_nodes, StorageConfig(write_bw=1 << 30, read_bw=2 << 30)
    )

    # Solver in groups 0-1 (nodes 0..31), trainer in group 2, ckpt in group 3.
    solver_nodes = list(range(27))
    trainer_nodes = list(topo.nodes_of_group(2))[:8]
    ckpt_nodes = list(topo.nodes_of_group(3))[:8]

    mpi.add_job(JobSpec("nekbone", 27, nekbone, solver_nodes,
                        {"dims": (3, 3, 3), "iters": 6}))
    mpi.add_job(JobSpec("train", 8, ml_reader, trainer_nodes,
                        {"storage": storage, "steps": 4, "files_per_step": 16,
                         "file_bytes": 128 << 10, "step_s": 2e-4,
                         "gradient_bytes": 1 << 20}))
    mpi.add_job(JobSpec("ckpt", 8, checkpointer, ckpt_nodes,
                        {"storage": storage, "iters": 3,
                         "stripe_bytes": 2 << 20, "interval_s": 2e-4}))
    mpi.run(until=5.0)

    rows = []
    for res in mpi.results():
        io = storage.app_stats(res.app_id)
        lat = res.max_latencies_per_rank()
        rows.append((
            res.name,
            format_seconds(max(lat) if lat else 0.0),
            format_seconds(res.max_comm_time()),
            io.ops,
            format_bytes(io.bytes_read + io.bytes_written),
            format_seconds(io.mean_latency()),
        ))
    print(render_table(
        ["job", "max msg latency", "max comm time", "io ops", "io bytes", "mean io latency"],
        rows,
        title=f"Storage servers {label}",
    ))
    srv_rows = [
        (f"server {s.server_id} @ node {s.node}", s.ops_served,
         format_bytes(s.bytes_written), format_bytes(s.bytes_read),
         f"{s.utilization(mpi.engine.now):.1%}", format_seconds(s.queue_time))
        for s in storage.servers
    ]
    print(render_table(
        ["device", "ops", "written", "read", "utilization", "total queue time"],
        srv_rows,
    ))
    print()


def main() -> None:
    topo = Dragonfly1D.mini()
    # Inside the solver's groups: first node of each of groups 0 and 1.
    inside = [list(topo.nodes_of_group(0))[-1], list(topo.nodes_of_group(1))[-1]]
    # Isolated: an idle group at the far end of the machine.
    outside = list(topo.nodes_of_group(topo.n_groups - 1))[:2]
    run(inside, "inside the solver's groups")
    run(outside, "in an idle group")
    print("Shape to observe: with servers inside the solver's groups, the\n"
          "solver's tail message latency rises (I/O bursts share its local\n"
          "and global links); moving servers to an idle group restores it.")


if __name__ == "__main__":
    main()
