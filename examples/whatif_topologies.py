#!/usr/bin/env python
"""What-if analysis across interconnect technologies.

The paper's introduction motivates "tools enabling extensive what-if
analysis when exploring the design spaces of various application-system
configurations", and Section II-B lists the topology models CODES's
network abstraction layer supports: dragonfly, torus, fat-tree, slim
fly.  This example runs the same two workloads (uniform-random traffic
and a 3D halo exchange) over all five of our fabric models at comparable
node counts and compares delivered latency — no simulator changes, just
a different topology object and routing factory per run.

Run:  python examples/whatif_topologies.py
"""

from repro.harness.report import format_seconds, render_table
from repro.mpi.engine import JobSpec, SimMPI
from repro.network.config import NetworkConfig
from repro.network.dragonfly import Dragonfly1D
from repro.network.dragonfly2d import Dragonfly2D
from repro.network.fabric import NetworkFabric
from repro.network.fattree import FatTreeTopology, fattree_routing_factory
from repro.network.slimfly import SlimFlyTopology, slimfly_routing_factory
from repro.network.torus import TorusTopology, torus_routing_factory
from repro.workloads.nearest_neighbor import nearest_neighbor
from repro.workloads.uniform_random import uniform_random

RANKS = 64
UR_PARAMS = {"iters": 20, "msg_bytes": 10240, "interval_s": 5e-6, "seed": 4}
NN_PARAMS = {"dims": (4, 4, 4), "iters": 8, "msg_bytes": 65536, "compute_s": 1e-5}


def systems():
    """(label, topology, routing) for each fabric model, ~64+ nodes each."""
    yield "1D dragonfly", Dragonfly1D.mini(), "adp"
    yield "2D dragonfly", Dragonfly2D.mini(), "adp"
    yield "4x4x4 torus", TorusTopology((4, 4, 4), nodes_per_router=1), torus_routing_factory()
    yield "8-ary fat-tree", FatTreeTopology(k=8), fattree_routing_factory("adaptive")
    yield "slim fly q=5", SlimFlyTopology(q=5, nodes_per_router=2), slimfly_routing_factory("adaptive")


def run(topo, routing, program, params):
    fabric = NetworkFabric(topo, NetworkConfig(seed=11), routing=routing)
    mpi = SimMPI(fabric)
    mpi.add_job(JobSpec("app", RANKS, program, list(range(RANKS)), dict(params)))
    mpi.run(until=5.0)
    res = mpi.results()[0]
    assert res.finished, "workload did not drain before the horizon"
    lats = res.all_latencies()
    lats.sort()
    return {
        "mean": sum(lats) / len(lats),
        "p99": lats[int(0.99 * (len(lats) - 1))],
        "max": lats[-1],
        "comm": res.max_comm_time(),
    }


def main() -> None:
    for label, program, params in (
        ("uniform random 10 KiB", uniform_random, UR_PARAMS),
        ("3D halo exchange 64 KiB", nearest_neighbor, NN_PARAMS),
    ):
        rows = []
        for name, topo, routing in systems():
            m = run(topo, routing, program, params)
            rows.append((
                name, topo.n_nodes, topo.radix(), topo.diameter(),
                format_seconds(m["mean"]), format_seconds(m["p99"]),
                format_seconds(m["max"]), format_seconds(m["comm"]),
            ))
        print(render_table(
            ["topology", "nodes", "radix", "diameter", "mean latency",
             "p99 latency", "max latency", "max comm time"],
            rows, title=f"{RANKS}-rank {label}",
        ))
        print()
    print("Shapes to observe: the low-diameter networks (slim fly, dragonfly)\n"
          "deliver the lowest uniform-random latency; the torus wins locality-\n"
          "friendly halo exchange but pays heavily on random traffic; the\n"
          "fat-tree sits between, trading hops for full bisection.")


if __name__ == "__main__":
    main()
