#!/usr/bin/env python
"""Describe a converged compute + I/O application in coNCePTuaL.

Section VII of the paper plans exactly this extension: "coNCePTuaL and
Union will be enhanced to support I/O operations" so hybrid workloads
can exercise communication and storage concurrently.  This example
writes a deep-learning-style training loop — read a shard of small
input files, compute, allreduce gradients, checkpoint periodically — as
plain coNCePTuaL, validates the auto-generated skeleton against the
full application (Section V methodology), then simulates it on the mini
1D dragonfly with two storage servers.

Run:  python examples/conceptual_io.py
"""

from repro.harness.report import format_bytes, format_seconds, render_table
from repro.network.dragonfly import Dragonfly1D
from repro.union.manager import Job, WorkloadManager
from repro.union.translator import translate
from repro.union.validation import validate_skeleton

TRAINER = '''
# A training loop with a storage-fed input pipeline and checkpoints.
Require language version "1.5".

steps is "Training steps" and comes from "--steps" or "-s" with default 4.
shard is "Input shard size in bytes" and comes from "--shard" or "-i" with default 262144.
grad is "Gradient bytes" and comes from "--grad" or "-g" with default 1048576.

For steps repetitions {
  # Every rank streams its input shard from its round-robin server.
  all tasks t reads a shard byte file from server (t mod 2) then
  all tasks computes for 300 microseconds then
  all tasks reduces a grad byte message to all tasks then
  # Rank 0 checkpoints the model every step.
  task 0 writes a (2 * grad) byte file to server 0
}
'''


def main() -> None:
    skeleton = translate(TRAINER, "trainer")
    print("Generated skeleton (UNION_IO_* interception visible):\n")
    for line in skeleton.python_source.splitlines():
        if "UNION_IO" in line or "UNION_MPI_Allreduce" in line:
            print("   ", line.strip())
    print()

    report = validate_skeleton(skeleton, n_tasks=8)
    status = "PASSED" if report.ok else "FAILED"
    print(f"Validation {status}: application vs skeleton on 8 ranks")
    print(render_table(
        ["Function", "Application", "Union Skeleton"],
        report.table4_rows(),
        title="Event counts (Table IV methodology, now including I/O)",
    ))
    app_buf, skel_buf = report.memory_comparison()
    print(f"I/O+message buffers: application {format_bytes(app_buf)}/rank, "
          f"skeleton {format_bytes(skel_buf)}/rank\n")

    topo = Dragonfly1D.mini()
    servers = [topo.n_nodes - 1, topo.n_nodes - 2]
    mgr = WorkloadManager(topo, routing="adp", placement="rg", seed=5,
                          storage_nodes=servers)
    mgr.add_job(Job("trainer", 8, skeleton=skeleton))
    outcome = mgr.run(until=10.0)
    res = outcome.app("trainer").result
    io = mgr.storage.app_stats(0)
    print(f"Simulated on mini 1D dragonfly with servers at nodes {servers}:")
    print(f"  finished: {res.finished}  "
          f"max comm time: {format_seconds(res.max_comm_time())}")
    print(f"  I/O: {io.ops} ops, read {format_bytes(io.bytes_read)}, "
          f"wrote {format_bytes(io.bytes_written)}, "
          f"mean latency {format_seconds(io.mean_latency())}")
    for s in mgr.storage.servers:
        print(f"  server {s.server_id} @ node {s.node}: "
              f"{format_bytes(s.bytes_read + s.bytes_written)} served, "
              f"device busy {format_seconds(s.busy_time)}")


if __name__ == "__main__":
    main()
